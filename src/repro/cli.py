"""Command-line interface.

Subcommands::

    python -m repro cluster   # run one clustering (synthetic or named data)
    python -m repro fleet     # one clustering sharded across modeled devices
    python -m repro study     # run a (k, l) parameter study
    python -m repro bench     # regenerate paper experiments ('all' for every one)
    python -m repro profile   # nvprof-style kernel profile of a GPU run
    python -m repro explain   # attribution: where the modeled seconds went
    python -m repro trace     # traced run: Perfetto JSON + telemetry + timeline
    python -m repro sanitize  # cuda-memcheck-style sweep of the emulated kernels
    python -m repro chaos     # fault-injection sweep: fault classes x backends
    python -m repro validate  # cross-variant clustering equivalence check
    python -m repro claims    # check every quantitative claim of the paper
    python -m repro serve     # process a spool of clustering requests
    python -m repro submit    # drop one request into a spool directory
    python -m repro loadgen   # replay a seeded request mix -> BENCH_serve.json
    python -m repro postmortem  # analyze/replay a flight-recorder crash bundle
    python -m repro monitor   # SLO health dashboard over a monitor directory
    python -m repro regress   # quick bench tier vs committed baseline (CI gate)
    python -m repro info      # list backends, datasets, hardware models

Examples::

    python -m repro cluster --n 20000 --k 10 --l 5 --backend gpu-fast
    python -m repro cluster --dataset pendigits --k 8 --l 5 --counters
    python -m repro study --n 30000 --level 3
    python -m repro study --checkpoint-dir ckpt/           # kill-safe study
    python -m repro study --checkpoint-dir ckpt/ --resume  # pick it back up
    python -m repro chaos --backends gpu-fast --json chaos_events.json
    python -m repro bench fig2ab --plot --csv out/fig2ab.csv
    python -m repro bench all --out results/
    python -m repro submit spool/ --k 8 --l 4 --n 5000 && python -m repro serve spool/
    python -m repro loadgen --requests 24 --json BENCH_serve.json
    python -m repro fleet --devices 4 --check         # 4-way shard, verify vs solo
    python -m repro bench fleet --json BENCH_fleet.json  # multi-device scaling curve
    python -m repro bench quick --save-baseline       # refresh the committed baseline
    python -m repro regress --json BENCH_regress.json # gate: exit 1 on regression
    python -m repro monitor monitor/ --once --json -  # one-shot SLO health report
    python -m repro explain --backend gpu-fast --json report.json --flamegraph fg.txt
    python -m repro explain --diff old_report.json report.json  # what moved, and why
    python -m repro monitor --fleet BENCH_fleet_report.json     # straggler analysis
    python -m repro serve spool/ --fault device-down@dev1 --record-dir pm/
    python -m repro postmortem pm/ --replay   # re-execute the crash from the bundle

Set ``REPRO_FLIGHT_RECORDER=<dir>`` to run any subcommand under an
ambient flight recorder that dumps postmortem bundles there.

Errors are reported as a one-line ``repro: error: ...`` message with
exit code 2 (interruption exits 130); pass ``--strict`` before the
subcommand to get the full traceback instead.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

import numpy as np

from . import BACKENDS, ParameterGrid, ProclusParams, proclus, run_parameter_study
from .exceptions import ReproError
from .bench import figures
from .data import (
    dataset_names,
    generate_subspace_data,
    load_dataset,
    minmax_normalize,
)
from .eval.metrics import adjusted_rand_index, subspace_recovery
from .bench.claims import check_all, format_results
from .eval.validation import validate_equivalence
from .gpu.profiler import (
    format_kernel_profile,
    kernel_profile_records,
    profile_kernels,
)
from .hardware.specs import GTX_1660_TI, INTEL_I7_9750H, INTEL_I9_10940X, RTX_3090

__all__ = ["main", "build_parser"]

#: Experiment name -> report function (for ``repro bench``).
EXPERIMENTS: dict[str, Callable[[], "figures.ExperimentReport"]] = {
    "fig1": figures.fig1_strategy_speedup,
    "fig2ab": figures.fig2ab_scale_n,
    "fig2cd": figures.fig2cd_scale_d,
    "fig2e": figures.fig2e_data_clusters,
    "fig2f": figures.fig2f_stddev,
    "fig2gk": figures.fig2gk_params,
    "fig3ae": figures.fig3ae_multiparam_scale,
    "fig3f": figures.fig3f_space,
    "fig3g": figures.fig3g_realworld,
    "sec53": figures.sec53_multiparam_levels,
    "sec54": figures.sec54_utilization,
    "ablation": figures.ablation_strategies,
}


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("data")
    group.add_argument("--dataset", choices=dataset_names(),
                       help="use a real-world stand-in instead of synthetic data")
    group.add_argument("--n", type=int, default=20_000,
                       help="synthetic dataset size (default 20000)")
    group.add_argument("--d", type=int, default=15,
                       help="synthetic dimensionality (default 15)")
    group.add_argument("--clusters", type=int, default=10,
                       help="planted clusters (default 10)")
    group.add_argument("--subspace-dims", type=int, default=5,
                       help="planted subspace size (default 5)")
    group.add_argument("--std", type=float, default=5.0,
                       help="planted cluster std (default 5.0)")
    group.add_argument("--data-seed", type=int, default=0,
                       help="seed for data generation (default 0)")


def _add_param_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("algorithm parameters")
    group.add_argument("--k", type=int, default=10)
    group.add_argument("--l", type=int, default=5)
    group.add_argument("--a", type=int, default=100, help="sample constant A")
    group.add_argument("--b", type=int, default=10, help="medoid constant B")
    group.add_argument("--min-deviation", type=float, default=0.7)
    group.add_argument("--patience", type=int, default=5, help="itrPat")
    group.add_argument("--seed", type=int, default=0, help="algorithm seed")


def _load_data(args: argparse.Namespace):
    if args.dataset:
        dataset = load_dataset(args.dataset, seed=args.data_seed)
    else:
        dataset = generate_subspace_data(
            n=args.n, d=args.d, n_clusters=args.clusters,
            subspace_dims=args.subspace_dims, std=args.std,
            seed=args.data_seed,
        )
    return minmax_normalize(dataset.data), dataset


def _params_from(args: argparse.Namespace, k: int | None = None,
                 l: int | None = None) -> ProclusParams:
    return ProclusParams(
        k=k if k is not None else args.k,
        l=l if l is not None else args.l,
        a=args.a, b=args.b,
        min_deviation=args.min_deviation,
        patience=args.patience,
    )


def _cmd_cluster(args: argparse.Namespace) -> int:
    data, dataset = _load_data(args)
    result = proclus(
        data, backend=args.backend, params=_params_from(args), seed=args.seed
    )
    print(result.summary())
    print()
    print(f"modeled time: {result.stats.modeled_seconds * 1e3:.3f} ms "
          f"on {result.stats.hardware}")
    if args.counters:
        from .result import counters_as_table

        print("\nwork counters:")
        print(counters_as_table(result.stats.counters))
    if dataset.labels is not None and (dataset.labels >= 0).any():
        print(f"ARI vs ground truth: "
              f"{adjusted_rand_index(dataset.labels, result.labels):.3f}")
        if dataset.subspaces:
            print(f"subspace recovery:   "
                  f"{subspace_recovery(dataset.subspaces, dataset.labels, result.dimensions, result.labels):.3f}")
    if args.save_labels:
        np.save(args.save_labels, result.labels)
        print(f"labels written to {args.save_labels}")
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    data, _ = _load_data(args)
    grid = ParameterGrid(
        ks=tuple(args.ks), ls=tuple(args.ls), base=_params_from(args, k=max(args.ks))
    )
    extra = {}
    if args.checkpoint_dir:
        extra["checkpoint_dir"] = args.checkpoint_dir
    if args.resume:
        extra["resume"] = True
    if args.resilient:
        extra["resilience"] = True
    study = run_parameter_study(
        data, grid=grid, backend=args.backend, level=args.level,
        seed=args.seed, **extra,
    )
    print(f"{args.backend} multi-param level {args.level}: "
          f"{study.num_settings} settings")
    print(f"{'k':>4} {'l':>4} {'cost':>12} {'iterations':>11}")
    for (k, l), result in sorted(study.results.items()):
        print(f"{k:>4} {l:>4} {result.cost:>12.6f} {result.iterations:>11}")
    best_k, best_l = study.best_setting()
    print(f"\nbest: k={best_k}, l={best_l}")
    print(f"avg modeled time per setting: "
          f"{study.average_seconds_per_setting * 1e3:.3f} ms")
    if study.events:
        print(f"resilience events: {len(study.events)}")
        for event in study.events:
            line = f"  {event.kind:10s} {event.rung}"
            if event.to_rung:
                line += f" -> {event.to_rung}"
            if event.error_type:
                line += f" ({event.error_type})"
            print(line)
    if args.checkpoint_dir:
        print(f"checkpoints in {args.checkpoint_dir}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.experiment == "quick":
        return _bench_quick(args)
    if args.experiment == "fleet":
        return _bench_fleet(args)
    if args.experiment == "all":
        from .bench.runner import run_all_experiments

        runs = run_all_experiments(out_dir=args.out, progress=print)
        for run in runs:
            print()
            print(run.report.render())
        if args.out:
            print(f"\nartifacts written to {args.out}")
        return 0
    report = EXPERIMENTS[args.experiment]()
    print(report.render())
    if args.plot:
        print()
        print(report.render_plot())
    if args.csv:
        path = report.to_csv(args.csv)
        print(f"\nrows written to {path}")
    if args.json:
        path = report.to_json(args.json)
        print(f"report written to {path}")
    return 0


def _bench_quick(args: argparse.Namespace) -> int:
    """The ``repro bench quick`` path: run the baseline tier."""
    import json
    import time as _time

    from .bench.baseline import (
        bench_quick_record,
        quick_report,
        run_quick_tier,
        write_baselines,
    )

    started = _time.perf_counter()
    records = run_quick_tier(progress=print)
    wall = _time.perf_counter() - started
    report = quick_report(records)
    print()
    print(report.render())
    if args.plot:
        print()
        print(report.render_plot())
    if args.csv:
        print(f"\nrows written to {report.to_csv(args.csv)}")
    if args.save_baseline:
        paths = write_baselines(records, args.baseline_dir)
        print(f"\n{len(paths)} baseline files written to {args.baseline_dir} "
              f"(commit them to move the regression gate)")
    if args.json:
        payload = bench_quick_record(records, wall)
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
        else:
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
            print(f"report written to {args.json}")
    return 0


def _bench_fleet(args: argparse.Namespace) -> int:
    """The ``repro bench fleet`` path: multi-device scaling curve."""
    import json

    from .fleet.bench import render_fleet_bench, run_fleet_bench, write_fleet_bench

    payload = run_fleet_bench(devices=tuple(args.devices), progress=print)
    print()
    print(render_fleet_bench(payload))
    if not payload["ok"]:
        print("\nWARNING: a fleet run was NOT bit-identical to solo",
              file=sys.stderr)
    if args.json:
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
        else:
            path = write_fleet_bench(payload, args.json)
            print(f"\nreport written to {path}")
    return 0 if payload["ok"] else 1


def _build_fleet(args: argparse.Namespace):
    from .fleet import default_fleet, mixed_fleet

    if args.mixed:
        large = args.devices // 2
        return mixed_fleet(small=args.devices - large, large=large)
    return default_fleet(args.devices)


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .core.api import BACKENDS as _BACKENDS
    from .fleet import FleetModel, fleet_report
    from .viz.ascii import fleet_utilization_chart

    data, _dataset = _load_data(args)
    fleet = _build_fleet(args)
    engine = _BACKENDS[args.backend](
        params=_params_from(args), seed=args.seed, fleet=fleet
    )
    result = engine.fit(data)
    assert isinstance(engine.model, FleetModel)
    report = fleet_report(engine.model)
    print(result.summary())
    print()
    print(fleet_utilization_chart(report))
    if args.check:
        solo_backend = args.backend.removeprefix("fleet-")
        solo = proclus(
            data, backend=solo_backend, params=_params_from(args),
            seed=args.seed,
        )
        identical = (
            np.array_equal(solo.labels, result.labels)
            and solo.dimensions == result.dimensions
            and solo.cost == result.cost
        )
        print()
        if identical:
            print(f"bit-identical to solo {solo_backend}: yes")
        else:
            print(f"bit-identical to solo {solo_backend}: NO",
                  file=sys.stderr)
            return 1
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"\nfleet report written to {args.json}")
    return 0


#: ``repro regress --inject`` choice -> backend remap simulating the
#: named lost optimization (the gate's negative control).
REGRESS_INJECTIONS: dict[str, dict[str, str]] = {
    # Lose the FAST Dist cache: FAST variants keep only the
    # incremental-H strategy (or nothing, for the star variant which
    # has no published H-only ablation).
    "no-dist-cache": {
        "gpu-fast": "gpu-fast-h-only",
        "gpu-fast-star": "gpu",
        "fast": "fast-h-only",
    },
}


def _cmd_regress(args: argparse.Namespace) -> int:
    import json

    from .bench.baseline import load_baselines, run_quick_tier
    from .bench.regress import run_regression_check

    baselines = load_baselines(args.baseline_dir)
    backend_map = REGRESS_INJECTIONS[args.inject] if args.inject else None
    if args.inject:
        print(f"injecting slowdown {args.inject!r}: "
              + ", ".join(f"{a}->{b}" for a, b in backend_map.items()))
    fresh = run_quick_tier(backend_map=backend_map, progress=print)
    verdict = run_regression_check(
        baselines, fresh,
        rel_threshold=args.rel_threshold, alpha=args.alpha,
    )
    print()
    for workload in verdict["workloads"]:
        modeled = workload["modeled"]
        if modeled is None:
            print(f"{workload['name']:<20} INVALID")
            continue
        status = "ok" if workload["ok"] else "REGRESSION"
        print(f"{workload['name']:<20} modeled "
              f"{modeled['mean_rel_delta'] * 100:+.2f}% "
              f"({modeled['slower']} slower / {modeled['faster']} faster / "
              f"{modeled['ties']} ties, p={modeled['p_slower']:.4f})  "
              f"{status}")
        for regression in workload["regressions"]:
            print(f"  {regression}")
    for issue in verdict["invalid"]:
        print(f"invalid baseline: {issue}", file=sys.stderr)
    print()
    if verdict["exit_code"] == 0:
        print("no regression against the committed baseline")
    elif verdict["exit_code"] == 1:
        print(f"REGRESSION in: {', '.join(verdict['regressed'])}",
              file=sys.stderr)
        for line in verdict.get("triage", []):
            print(f"  triage: {line}", file=sys.stderr)
    else:
        print("baseline store is unusable — regenerate it with "
              "'repro bench quick --save-baseline'", file=sys.stderr)
    if args.json:
        if args.json == "-":
            json.dump(verdict, sys.stdout, indent=2)
            print()
        else:
            with open(args.json, "w") as handle:
                json.dump(verdict, handle, indent=2)
            print(f"verdict written to {args.json}")
    return verdict["exit_code"]


def _cmd_monitor(args: argparse.Namespace) -> int:
    import json
    import time as _time

    from .obs.monitor import load_health
    from .viz import render_health

    if args.fleet:
        from .obs.explain import fleet_attribution
        from .viz.explain import render_fleet_attribution

        with open(args.fleet) as handle:
            report = json.load(handle)
        # Accept a fleet_report dict (live or archived), a repro.explain/1
        # report (fleet section), or raw per-device ledgers.
        if isinstance(report.get("fleet"), dict):
            attribution = report["fleet"]
        elif isinstance(report.get("attribution"), dict) and (
            "straggler_index" in report["attribution"]
        ):
            attribution = report["attribution"]
        else:
            attribution = fleet_attribution(report)
        print(render_fleet_attribution(attribution))
        return 0
    if args.dir is None:
        print("monitor: a monitor directory is required (or --fleet FILE)",
              file=sys.stderr)
        return 2
    if args.once:
        health = load_health(args.dir)  # missing -> OSError -> exit 2
        if args.json:
            if args.json == "-":
                json.dump(health, sys.stdout, indent=2)
                print()
            else:
                with open(args.json, "w") as handle:
                    json.dump(health, handle, indent=2)
                print(f"health report written to {args.json}")
        else:
            print(render_health(health))
        return 0 if health["ok"] else 1

    health = None
    updates = 0
    while True:
        try:
            health = load_health(args.dir)
        except FileNotFoundError:
            print(f"waiting for {args.dir}/health.json ...")
        else:
            print(render_health(health))
            print()
        updates += 1
        if health is not None and health.get("final"):
            print("service flushed its final snapshot; exiting")
            break
        if args.max_updates is not None and updates >= args.max_updates:
            break
        _time.sleep(args.interval)
    if health is None:
        print(f"no health report ever appeared in {args.dir}",
              file=sys.stderr)
        return 2
    return 0 if health["ok"] else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from .obs.explain import (
        attribute_run,
        attribution_record,
        collapsed_stacks,
        diff_attribution,
        diff_counters,
        explain_report,
        format_collapsed,
        load_comparable,
        speedscope_profile,
        validate_explain_report,
    )
    from .viz.explain import (
        render_attribution,
        render_diff,
        render_fleet_attribution,
    )

    def _dump(payload, path, what):
        if path == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
        else:
            with open(path, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            print(f"{what} written to {path}")

    if args.diff:
        from .obs.export import report_envelope

        a, b = (load_comparable(path) for path in args.diff)
        diff = None
        if a["attribution"] is not None and b["attribution"] is not None:
            diff = diff_attribution(a["attribution"], b["attribution"])
        counters = diff_counters(a["counters"], b["counters"])
        print(f"differential attribution: {a['label']} -> {b['label']}")
        if diff is not None:
            print(render_diff(diff, top=args.top))
        if counters:
            print("counter movers:")
            for row in counters[: args.top]:
                print(f"  {row['name']}: {row['baseline']:g} -> "
                      f"{row['fresh']:g} ({row['delta']:+g})")
        else:
            print("no counter deltas")
        if args.json:
            _dump(
                {
                    **report_envelope("repro.explain_diff/1"),
                    "a": a["label"],
                    "b": b["label"],
                    "zero": bool((diff is None or diff["zero"]) and not counters),
                    "diff": diff,
                    "counters": counters,
                },
                args.json, "diff report",
            )
        return 0

    if args.workload:
        from .bench.baseline import QUICK_TIER, run_workload

        workloads = {w.name: w for w in QUICK_TIER}
        if args.workload not in workloads:
            print(f"unknown workload {args.workload!r}; available: "
                  f"{', '.join(sorted(workloads))}", file=sys.stderr)
            return 2
        record = run_workload(workloads[args.workload])
        summary = record["attribution"]
        print(f"{args.workload}: {summary['total_seconds'] * 1e3:.3f} ms "
              f"modeled over seeds {record['seeds']}")
        for name, seconds in sorted(
            summary["components"].items(), key=lambda i: -i[1]
        ):
            share = seconds / summary["total_seconds"] if summary["total_seconds"] else 0.0
            print(f"  {name:<8} {seconds * 1e3:>9.3f} ms  {share * 100:5.1f}%")
        top_kernels = sorted(
            summary["kernels"].items(), key=lambda i: -i[1]
        )[: args.top]
        print("top kernels:")
        for name, seconds in top_kernels:
            print(f"  {name:<28} {seconds * 1e3:>9.3f} ms")
        if args.json:
            _dump(record, args.json, "workload record (diffable vs baseline)")
        return 0

    from .obs import Tracer, use_tracer

    data, _ = _load_data(args)
    engine_kwargs = {}
    if args.backend.startswith("fleet-"):
        engine_kwargs["fleet"] = _build_fleet(args)
    tracer = Tracer()
    with use_tracer(tracer):
        engine = BACKENDS[args.backend](
            params=_params_from(args), seed=args.seed, **engine_kwargs
        )
        result = engine.fit(data)
    record = attribution_record(attribute_run(engine.model))
    fleet_section = None
    from .fleet import FleetModel, fleet_report

    if isinstance(engine.model, FleetModel):
        fleet_section = fleet_report(engine.model)["attribution"]
    print(render_attribution(record, top=args.top))
    if fleet_section is not None:
        print()
        print(render_fleet_attribution(fleet_section))
    report = explain_report(
        record,
        label=args.backend,
        counters=dict(result.stats.counters),
        fleet=fleet_section,
    )
    problems = validate_explain_report(report)
    if problems:
        print(f"\nexplain report failed self-validation "
              f"({len(problems)} problems):", file=sys.stderr)
        for problem in problems[:20]:
            print(f"  {problem}", file=sys.stderr)
        return 1
    if args.flamegraph:
        with open(args.flamegraph, "w") as handle:
            handle.write(format_collapsed(collapsed_stacks(tracer)))
        print(f"collapsed-stack flamegraph written to {args.flamegraph}")
    if args.speedscope:
        with open(args.speedscope, "w") as handle:
            json.dump(speedscope_profile(tracer, name=args.backend), handle)
        print(f"speedscope profile written to {args.speedscope} "
              f"(open at https://www.speedscope.app)")
    if args.json:
        _dump(report, args.json, "explain report")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    data, _ = _load_data(args)
    if not args.backend.startswith("gpu"):
        print("profile requires a GPU backend", file=sys.stderr)
        return 2
    engine = BACKENDS[args.backend](params=_params_from(args), seed=args.seed)
    result = engine.fit(data)
    profiles = profile_kernels(engine.model)
    if args.json:
        import json

        payload = {
            "schema": "repro.kernel_profile/1",
            "backend": args.backend,
            "hardware": result.stats.hardware,
            "modeled_seconds": result.stats.modeled_seconds,
            "kernels": kernel_profile_records(profiles),
        }
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
            return 0
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"profile written to {args.json}")
        return 0
    print(format_kernel_profile(profiles, top=args.top))
    print(f"\nmodeled total: {result.stats.modeled_seconds * 1e3:.3f} ms "
          f"on {result.stats.hardware}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .obs import (
        Tracer,
        run_record,
        study_record,
        use_tracer,
        validate_chrome_trace,
        write_chrome_trace,
        write_jsonl,
    )
    from .obs.export import chrome_trace
    from .viz import render_timeline

    data, _ = _load_data(args)
    out = Path(args.out)
    tracer = Tracer()
    with use_tracer(tracer):
        if args.study_level is not None:
            grid = ParameterGrid(
                ks=tuple(args.ks), ls=tuple(args.ls),
                base=_params_from(args, k=max(args.ks)),
            )
            study = run_parameter_study(
                data, grid=grid, backend=args.backend,
                level=args.study_level, seed=args.seed,
            )
            record = study_record(
                study, tracer, label=args.label, seed=args.seed
            )
        else:
            engine = BACKENDS[args.backend](
                params=_params_from(args), seed=args.seed, collect_trace=True
            )
            result = engine.fit(data)
            record = run_record(
                result, tracer, label=args.label, seed=args.seed,
                n=data.shape[0], d=data.shape[1], params=engine.params,
            )

    trace = chrome_trace(tracer, label=args.label or args.backend)
    trace_path = write_chrome_trace(
        tracer, out / f"trace_{args.backend}.json", label=args.label or args.backend
    )
    telemetry_path = write_jsonl(out / "telemetry.jsonl", [record])

    print(render_timeline(tracer))
    print()
    print(f"chrome trace written to {trace_path} "
          f"(open in https://ui.perfetto.dev)")
    print(f"telemetry written to {telemetry_path}")

    problems = validate_chrome_trace(trace)
    if problems:
        print(f"\ntrace failed validation ({len(problems)} problems):",
              file=sys.stderr)
        for problem in problems[:20]:
            print(f"  {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from .gpu_impl.sanitize import run_sweep

    kernels = None if args.all_kernels or not args.kernel else args.kernel
    seeds: tuple[int | None, ...] = (None, *range(1, args.schedules))
    report = run_sweep(kernels=kernels, schedule_seeds=seeds, seed=args.seed)
    print(report.render())
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report written to {args.json}")
    return 0 if report.ok else 1


#: Fault class -> default chaos schedule (fires early in every run).
CHAOS_FAULTS: dict[str, tuple[str, ...]] = {
    "oom": ("oom#1",),
    "launch": ("launch#2",),
    "transient": ("transient#2",),
    "corrupt": ("corrupt#1",),
    "timeout": ("timeout#2",),
}


def _results_identical(a, b) -> bool:
    """Bit-identical clustering (dimensions is a ragged tuple: use ==)."""
    return (
        np.array_equal(a.labels, b.labels)
        and np.array_equal(a.medoids, b.medoids)
        and a.dimensions == b.dimensions
        and a.cost == b.cost
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    from dataclasses import asdict

    from .resilience import (
        FaultInjector,
        ResilientRunner,
        RetryPolicy,
        use_injector,
    )

    if args.fleet:
        return _cmd_chaos_fleet(args)

    data, _ = _load_data(args)
    params = _params_from(args)
    policy = RetryPolicy(max_retries=args.max_retries)
    runner = ResilientRunner(policy)
    if args.fault:
        sweep: dict[str, tuple[str, ...]] = {"custom": tuple(args.fault)}
    else:
        sweep = CHAOS_FAULTS
    recorder = None
    if args.record_dir:
        from .obs import FlightRecorder

        recorder = FlightRecorder(bundle_dir=args.record_dir)

    rows: list[dict] = []
    print(f"chaos sweep: {len(args.backends)} backend(s) x "
          f"{len(sweep)} fault class(es), n={data.shape[0]}, "
          f"k={params.k}, l={params.l}")
    print(f"{'backend':<14} {'fault':<10} {'fired':>5} {'attempts':>8} "
          f"{'final rung':<26} {'identical':<9} ok")
    for backend in args.backends:
        reference = proclus(data, backend=backend, params=params, seed=args.seed)
        rungs = [step.describe() for step in policy.ladder_for(backend)]
        for fault_class, schedule in sweep.items():
            injector = FaultInjector(schedule, seed=args.seed)
            row = {
                "backend": backend,
                "fault_class": fault_class,
                "schedule": list(schedule),
            }
            try:
                from .obs.recorder import use_recorder

                with use_injector(injector), use_recorder(recorder):
                    outcome = runner.fit(
                        data, backend=backend, params=params, seed=args.seed
                    )
            except ReproError as error:
                row.update(
                    error=f"{type(error).__name__}: {error}", ok=False,
                    fired=len(injector.injected),
                )
                rows.append(row)
                print(f"{backend:<14} {fault_class:<10} "
                      f"{len(injector.injected):>5} {'-':>8} "
                      f"{'-':<26} {'-':<9} FAIL ({type(error).__name__})")
                continue
            fired = len(injector.injected)
            identical = _results_identical(outcome.result, reference)
            along_ladder = outcome.rung in rungs and all(
                event.to_rung in rungs
                for event in outcome.events
                if event.kind == "degrade"
            )
            ok = identical and along_ladder and fired > 0
            if not ok and recorder is not None:
                from .obs.postmortem import result_digest

                # Chaos-contract violation: the run completed but broke
                # the completes-identical-or-degrades-along-ladder
                # contract; pin the fault-free reference digest so a
                # replay can check the solo bits from the bundle alone.
                recorder.set_reference_digest(result_digest(reference))
                recorder.record_failure(
                    "chaos-contract",
                    events=outcome.events,
                    detail=(
                        f"{backend} x {fault_class}: identical={identical}, "
                        f"along_ladder={along_ladder}, fired={fired}"
                    ),
                )
                recorder.auto_dump("chaos-contract")
            row.update(
                fired=fired,
                attempts=outcome.attempts,
                rung=outcome.rung,
                degraded=outcome.degraded,
                identical=identical,
                along_ladder=along_ladder,
                ok=ok,
                injected=[asdict(record) for record in injector.injected],
                events=[event.as_dict() for event in outcome.events],
            )
            rows.append(row)
            print(f"{backend:<14} {fault_class:<10} {fired:>5} "
                  f"{outcome.attempts:>8} {outcome.rung:<26} "
                  f"{str(identical).lower():<9} "
                  f"{'ok' if ok else 'VIOLATION'}")

    failures = [row for row in rows if not row.get("ok")]
    print()
    if failures:
        print(f"{len(failures)}/{len(rows)} runs violated the "
              f"completes-identical-or-degrades-along-ladder contract")
    else:
        print(f"all {len(rows)} injected runs completed with the "
              f"fault-free clustering (degrading along the ladder "
              f"where needed)")
    if args.json:
        import json

        from .obs import report_envelope

        payload = {
            **report_envelope("repro.chaos/1"),
            "n": int(data.shape[0]),
            "d": int(data.shape[1]),
            "k": params.k,
            "l": params.l,
            "seed": args.seed,
            "max_retries": args.max_retries,
            "ok": not failures,
            "rows": rows,
        }
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
        else:
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
            print(f"event log written to {args.json}")
    return 1 if failures else 0


#: Fleet chaos scenarios: kill each member early (during the data
#: upload) and mid-run (inside the iterative phase).
FLEET_CHAOS_AT = {"upload": 1, "iterate": 8}


def _cmd_chaos_fleet(args: argparse.Namespace) -> int:
    """Device-loss chaos sweep: kill each fleet member at each stage.

    Contract per run: the outcome is bit-identical to the solo
    reference, the injected fault actually fired, and recovery either
    re-sharded within the fleet rung or degraded along the documented
    ladder.  Exit 1 on any violation.
    """
    from dataclasses import asdict

    from .resilience import (
        FaultInjector,
        ResilientRunner,
        RetryPolicy,
        use_injector,
    )

    data, _ = _load_data(args)
    params = _params_from(args)
    policy = RetryPolicy(max_retries=args.max_retries)
    runner = ResilientRunner(policy)
    devices = args.devices
    backends = [
        backend for backend in args.backends
        if backend.startswith("fleet-")
    ] or ["fleet-gpu-fast", "fleet-gpu"]

    rows: list[dict] = []
    print(f"fleet chaos sweep: {len(backends)} backend(s) x {devices} "
          f"device(s) x {len(FLEET_CHAOS_AT)} stage(s), "
          f"n={data.shape[0]}, k={params.k}, l={params.l}")
    print(f"{'backend':<16} {'scenario':<22} {'fired':>5} {'attempts':>8} "
          f"{'final rung':<30} {'identical':<9} ok")
    for backend in backends:
        solo_backend = backend.removeprefix("fleet-")
        reference = proclus(
            data, backend=solo_backend, params=params, seed=args.seed
        )
        rungs = [step.describe() for step in policy.ladder_for(backend)]
        for device in range(devices):
            for stage, at in FLEET_CHAOS_AT.items():
                schedule = (f"device-down@dev{device}#{at}",)
                scenario = f"down-dev{device}@{stage}"
                injector = FaultInjector(schedule, seed=args.seed)
                row = {
                    "backend": backend,
                    "scenario": scenario,
                    "schedule": list(schedule),
                    "devices": devices,
                }
                try:
                    with use_injector(injector):
                        outcome = runner.fit(
                            data, backend=backend, params=params,
                            seed=args.seed,
                            engine_kwargs={"fleet": devices},
                        )
                except ReproError as error:
                    row.update(
                        error=f"{type(error).__name__}: {error}", ok=False,
                        fired=len(injector.injected),
                    )
                    rows.append(row)
                    print(f"{backend:<16} {scenario:<22} "
                          f"{len(injector.injected):>5} {'-':>8} {'-':<30} "
                          f"{'-':<9} FAIL ({type(error).__name__})")
                    continue
                fired = len(injector.injected)
                identical = _results_identical(outcome.result, reference)
                resharded = any(
                    event.kind == "reshard" for event in outcome.events
                )
                along_ladder = outcome.rung in rungs and all(
                    event.to_rung in rungs
                    for event in outcome.events
                    if event.kind == "degrade"
                )
                recovered = resharded or (outcome.degraded and along_ladder)
                ok = identical and recovered and fired > 0
                row.update(
                    fired=fired,
                    attempts=outcome.attempts,
                    rung=outcome.rung,
                    degraded=outcome.degraded,
                    resharded=resharded,
                    identical=identical,
                    ok=ok,
                    injected=[
                        asdict(record) for record in injector.injected
                    ],
                    events=[event.as_dict() for event in outcome.events],
                )
                rows.append(row)
                final = next(
                    (event.to_rung for event in reversed(outcome.events)
                     if event.kind in ("reshard", "degrade")),
                    outcome.rung,
                )
                print(f"{backend:<16} {scenario:<22} {fired:>5} "
                      f"{outcome.attempts:>8} {final:<30} "
                      f"{str(identical).lower():<9} "
                      f"{'ok' if ok else 'VIOLATION'}")

    failures = [row for row in rows if not row.get("ok")]
    print()
    if failures:
        print(f"{len(failures)}/{len(rows)} device-loss runs violated the "
              f"bit-identical-after-recovery contract")
    else:
        print(f"all {len(rows)} device-loss runs recovered with the "
              f"solo clustering (re-sharding within the fleet or "
              f"degrading along the ladder)")
    if args.json:
        import json

        from .obs import report_envelope

        payload = {
            **report_envelope("repro.chaos/1"),
            "mode": "fleet",
            "n": int(data.shape[0]),
            "d": int(data.shape[1]),
            "k": params.k,
            "l": params.l,
            "seed": args.seed,
            "devices": devices,
            "max_retries": args.max_retries,
            "ok": not failures,
            "rows": rows,
        }
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
        else:
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
            print(f"event log written to {args.json}")
    return 1 if failures else 0


def _cmd_claims(args: argparse.Namespace) -> int:
    results = check_all()
    print(format_results(results))
    return 0 if all(r.passed for r in results) else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    report = validate_equivalence(
        n=args.n, d=args.d, seeds=tuple(range(args.runs))
    )
    print(report.render())
    return 0 if report.passed else 1


#: --gpu choice -> modeled card.
GPU_SPECS = {"gtx1660ti": GTX_1660_TI, "rtx3090": RTX_3090}


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .serve import ClusterService, serve_spool
    from .viz import render_health, render_serve_lanes

    fleet = None
    if args.devices is not None:
        from .fleet import default_fleet

        if args.devices < 1:
            print(f"--devices must be >= 1, got {args.devices}",
                  file=sys.stderr)
            return 2
        fleet = default_fleet(args.devices)
    policy = None
    if args.no_degrade or args.max_retries is not None \
            or args.max_reshards is not None:
        from .resilience import RetryPolicy

        policy = RetryPolicy(
            max_retries=(
                args.max_retries if args.max_retries is not None else 3
            ),
            allow_degraded=not args.no_degrade,
            max_reshards=args.max_reshards,
        )
    injector = None
    if args.fault:
        from .resilience import FaultInjector

        injector = FaultInjector(tuple(args.fault), seed=args.fault_seed)
    recorder = None
    if args.record_dir:
        from .obs import FlightRecorder

        recorder = FlightRecorder(
            capacity=args.record_capacity, bundle_dir=args.record_dir
        )
    service = ClusterService(
        workers=args.workers,
        gpu_spec=GPU_SPECS[args.gpu],
        fleet=fleet,
        policy=policy,
        cache_entries=args.cache_entries,
        monitor_dir=args.monitor_dir,
        recorder=recorder,
        injector=injector,
    )
    where = (
        f"a {fleet.num_devices}-card modeled fleet"
        if fleet is not None else f"modeled {GPU_SPECS[args.gpu].name}"
    )
    print(f"serving spool {args.spool} on {where} "
          f"({args.workers} workers)")
    if args.monitor_dir:
        print(f"monitoring output in {args.monitor_dir} "
              f"(watch with: repro monitor {args.monitor_dir})")
    if injector is not None:
        print(f"fault injection active: {', '.join(args.fault)} "
              f"(seed {args.fault_seed})")
    if recorder is not None:
        print(f"flight recorder on: postmortem bundles land in "
              f"{args.record_dir}")

    def _on_sigterm(signum, frame):
        # Unwind through the KeyboardInterrupt path so the finally
        # block below flushes the final monitoring snapshot.
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    handled = 0
    interrupted = False
    try:
        handled = serve_spool(
            args.spool, service,
            once=args.once,
            poll_seconds=args.poll_seconds,
            max_batches=args.max_batches,
            progress=print,
        )
    except KeyboardInterrupt:
        interrupted = True
        raise
    finally:
        signal.signal(signal.SIGTERM, previous)
        if interrupted and recorder is not None:
            recorder.record_failure(
                "sigterm",
                detail="service terminated by signal mid-stream",
            )
            bundle = recorder.auto_dump("sigterm")
            if bundle is not None:
                print(f"postmortem bundle written to {bundle}")
        health = service.shutdown()
        if health is not None:
            print()
            print(render_health(health))
        if recorder is not None and recorder.dumped_paths:
            print(f"\n{len(recorder.dumped_paths)} postmortem bundle(s): "
                  + ", ".join(str(path) for path in recorder.dumped_paths))
    stats = service.stats()
    print(f"\n{handled} requests handled "
          f"(cache hits {stats['cache']['hits']}, "
          f"coalesced {int(stats['counters'].get('serve.coalesced', 0))}, "
          f"modeled {stats['executed_modeled_seconds'] * 1e3:.3f} ms executed)")
    if args.timeline and len(service.log):
        print()
        print(render_serve_lanes(service.log.snapshot()))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import time as _time

    from .serve import read_response, write_request

    if args.id:
        request_id = args.id
    else:
        request_id = f"req-{int(_time.time() * 1e3):x}"
    dataset: dict = {}
    if args.npy:
        dataset["npy"] = args.npy
    else:
        dataset["synthetic"] = {
            "n": args.n, "d": args.d, "clusters": args.clusters,
            "seed": args.data_seed,
        }
    path = write_request(
        args.spool, request_id,
        backend=args.backend, k=args.k, l=args.l,
        seed=args.seed, priority=args.priority, **dataset,
    )
    print(f"request {request_id} written to {path}")
    if not args.wait:
        return 0
    deadline = _time.monotonic() + args.wait
    while _time.monotonic() < deadline:
        response = read_response(args.spool, request_id)
        if response is not None:
            if not response.get("ok"):
                print(f"request failed: {response.get('error')}",
                      file=sys.stderr)
                return 1
            print(f"cost={response['cost']:.6f} "
                  f"refined={response['refined_cost']:.6f} "
                  f"iterations={response['iterations']} "
                  f"outliers={response['n_outliers']}")
            print(f"medoids: {response['medoids']}")
            print(f"labels sha256: {response['labels_sha256']}")
            if response.get("cached"):
                print("(served from the result cache)")
            if response.get("coalesced"):
                print("(coalesced with concurrent requests)")
            return 0
        _time.sleep(0.2)
    print(f"no response within {args.wait:.0f}s "
          f"(is `repro serve {args.spool}` running?)", file=sys.stderr)
    return 1


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .obs import validate_bench_report
    from .serve import run_loadgen
    from .viz import render_health, render_serve_lanes

    report = run_loadgen(
        args.requests,
        seed=args.seed,
        workers=args.workers,
        backends=tuple(args.backends),
        num_datasets=args.datasets,
        n=args.n,
        d=args.d,
        clusters=args.clusters,
        seeds=tuple(args.run_seeds),
        ks=tuple(args.ks),
        ls=tuple(args.ls),
        a=args.a,
        b=args.b,
        cache_entries=args.cache_entries,
        gpu_spec=GPU_SPECS[args.gpu],
        monitor_dir=args.monitor_dir,
        postmortem_dir=args.postmortem_dir,
        progress=print,
    )
    totals = report["totals"]
    print()
    print(f"{report['requests']} requests "
          f"({report['unique_settings']} unique settings) "
          f"on modeled {report['config']['gpu']}")
    print(f"modeled device seconds: naive "
          f"{totals['naive_modeled_seconds'] * 1e3:.3f} ms -> served "
          f"{totals['served_modeled_seconds'] * 1e3:.3f} ms "
          f"({totals['speedup']:.2f}x)")
    print(f"latency p50/p95/max: "
          f"{report['latency_seconds']['p50'] * 1e3:.1f} / "
          f"{report['latency_seconds']['p95'] * 1e3:.1f} / "
          f"{report['latency_seconds']['max'] * 1e3:.1f} ms")
    violations = report["determinism"]["violations"]
    print(f"determinism: {report['determinism']['checked']} checked, "
          f"{len(violations)} violations")
    for violation in violations[:10]:
        print(f"  VIOLATION: {violation}")
    if report.get("postmortem_bundle"):
        print(f"  postmortem bundle: {report['postmortem_bundle']} "
              f"(inspect with: repro postmortem {report['postmortem_bundle']})")
    if args.timeline:
        print()
        print(render_serve_lanes(report["events"]))
    if "health" in report:
        print()
        print(render_health(report["health"]))
    problems = validate_bench_report(report, "repro.serve_bench/1")
    for problem in problems:
        print(f"report problem: {problem}", file=sys.stderr)
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"\nreport written to {args.json}")
    return 0 if report["ok"] and not problems else 1


def _cmd_postmortem(args: argparse.Namespace) -> int:
    import json

    from .obs.postmortem import analyze_bundle, load_bundle, replay_bundle
    from .viz import render_postmortem

    bundle = load_bundle(args.bundle)
    analysis = analyze_bundle(bundle)
    replay_report = None
    if args.replay:
        replay_report = replay_bundle(bundle)
        analysis["replay"] = replay_report
    print(render_postmortem(bundle, analysis))
    if replay_report is not None:
        print()
        if replay_report["reproduced"]:
            if replay_report["expected_error_type"]:
                print(f"replay REPRODUCED the failure: "
                      f"{replay_report['observed_error_type']} with a "
                      f"bit-identical resilience event log")
            else:
                print(f"replay REPRODUCED the recorded solo bits: digest "
                      f"{replay_report['observed_digest'][:12]} matches "
                      f"the reference")
        else:
            print(f"replay DID NOT reproduce the recorded failure: "
                  f"{replay_report['detail']}")
    if args.json:
        if args.json == "-":
            json.dump(analysis, sys.stdout, indent=2)
            print()
        else:
            with open(args.json, "w") as handle:
                json.dump(analysis, handle, indent=2)
            print(f"analysis written to {args.json}")
    if replay_report is not None and not replay_report["reproduced"]:
        return 1
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    print("backends:")
    for name in sorted(BACKENDS):
        print(f"  {name:22s} -> {BACKENDS[name].__name__}")
    print("\nreal-world stand-in datasets:")
    from .data.realworld import REAL_WORLD_SIZES

    for name in dataset_names():
        n, d = REAL_WORLD_SIZES[name]
        print(f"  {name:12s} {n:>9,} x {d}")
    print("\nmodeled hardware:")
    for spec in (INTEL_I7_9750H, INTEL_I9_10940X):
        print(f"  {spec.name:26s} {spec.cores} cores @ {spec.clock_hz/1e9:.1f} GHz")
    for spec in (GTX_1660_TI, RTX_3090):
        print(f"  {spec.name:26s} {spec.core_count} cores, "
              f"{spec.memory_bytes // 1024**3} GiB, "
              f"{spec.mem_bandwidth_bytes_per_s / 1e9:.0f} GB/s")
    print("\nexperiments (repro bench <id>):")
    print("  " + ", ".join(sorted(EXPERIMENTS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU-FAST-PROCLUS reproduction (EDBT 2022)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="re-raise errors with a full traceback instead of the "
             "one-line message (place before the subcommand)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cluster = sub.add_parser("cluster", help="run one PROCLUS clustering")
    _add_data_arguments(cluster)
    _add_param_arguments(cluster)
    cluster.add_argument("--backend", choices=sorted(BACKENDS), default="gpu-fast")
    cluster.add_argument("--save-labels", metavar="PATH",
                         help="write the label array as .npy")
    cluster.add_argument("--counters", action="store_true",
                         help="print the raw work counters")
    cluster.set_defaults(func=_cmd_cluster)

    study = sub.add_parser("study", help="run a (k, l) parameter study")
    _add_data_arguments(study)
    _add_param_arguments(study)
    study.add_argument("--ks", type=int, nargs="+", default=[12, 10, 8])
    study.add_argument("--ls", type=int, nargs="+", default=[7, 5, 3])
    study.add_argument("--level", type=int, choices=[0, 1, 2, 3], default=3,
                       help="multi-param reuse level (default 3)")
    study.add_argument("--backend", choices=sorted(BACKENDS), default="gpu-fast")
    study.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="persist each completed (k, l) setting here so a killed "
             "study can be resumed",
    )
    study.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint-dir, skipping completed settings "
             "(final output is identical to an uninterrupted study)",
    )
    study.add_argument(
        "--resilient", action="store_true",
        help="recover from device faults by retrying and degrading "
             "along the backend ladder",
    )
    study.set_defaults(func=_cmd_study)

    from .bench.baseline import DEFAULT_BASELINE_DIR

    bench = sub.add_parser("bench", help="regenerate a paper experiment")
    bench.add_argument("experiment",
                       choices=sorted(EXPERIMENTS) + ["all", "quick", "fleet"])
    bench.add_argument("--devices", type=int, nargs="+", default=[1, 2, 3, 4],
                       help="(with 'fleet') device counts of the scaling "
                            "curve (default 1 2 3 4)")
    bench.add_argument("--csv", metavar="PATH", help="also write rows as CSV")
    bench.add_argument("--json", metavar="PATH",
                       help="also write report as JSON ('-' = stdout for "
                            "'quick')")
    bench.add_argument("--plot", action="store_true",
                       help="render the series as an ASCII log-log chart")
    bench.add_argument("--out", metavar="DIR",
                       help="(with 'all') write CSV/JSON/SUMMARY.md here")
    bench.add_argument("--save-baseline", action="store_true",
                       help="(with 'quick') write the run as the committed "
                            "baseline store")
    bench.add_argument("--baseline-dir", metavar="DIR",
                       default=DEFAULT_BASELINE_DIR,
                       help=f"baseline store location "
                            f"(default {DEFAULT_BASELINE_DIR})")
    bench.set_defaults(func=_cmd_bench)

    fleet = sub.add_parser(
        "fleet",
        help="run one clustering sharded across a fleet of modeled devices",
    )
    _add_data_arguments(fleet)
    _add_param_arguments(fleet)
    fleet.add_argument(
        "--backend",
        choices=["fleet-gpu", "fleet-gpu-fast", "fleet-gpu-fast-star"],
        default="fleet-gpu-fast",
    )
    fleet.add_argument("--devices", type=int, default=2,
                       help="number of modeled devices (default 2)")
    fleet.add_argument("--mixed", action="store_true",
                       help="use a heterogeneous GTX 1660 Ti + RTX 3090 mix "
                            "instead of identical cards")
    fleet.add_argument("--check", action="store_true",
                       help="also run the solo backend and verify the "
                            "clustering is bit-identical (exit 1 if not)")
    fleet.add_argument("--json", metavar="PATH",
                       help="write the per-device fleet report as JSON")
    fleet.set_defaults(func=_cmd_fleet)

    regress = sub.add_parser(
        "regress",
        help="run the quick bench tier against the committed baseline "
             "(exit 0 ok / 1 regression / 2 invalid baseline)",
    )
    regress.add_argument("--baseline-dir", metavar="DIR",
                         default=DEFAULT_BASELINE_DIR,
                         help=f"baseline store to compare against "
                              f"(default {DEFAULT_BASELINE_DIR})")
    regress.add_argument("--rel-threshold", type=float, default=0.005,
                         help="mean relative modeled-seconds slowdown "
                              "required to flag (default 0.005)")
    regress.add_argument("--alpha", type=float, default=0.05,
                         help="sign-test significance level (default 0.05)")
    regress.add_argument("--inject", choices=sorted(REGRESS_INJECTIONS),
                         help="deliberately slow the fresh run (negative "
                              "control; must exit 1 against a good baseline)")
    regress.add_argument("--json", metavar="PATH",
                         help="write the verdict as JSON ('-' = stdout)")
    regress.set_defaults(func=_cmd_regress)

    monitor = sub.add_parser(
        "monitor",
        help="SLO health dashboard over a service's monitor directory",
    )
    monitor.add_argument("dir", nargs="?", default=None,
                         help="monitor directory written by "
                              "'repro serve --monitor-dir' or loadgen")
    monitor.add_argument("--fleet", metavar="FILE",
                         help="instead of a monitor dir: render the "
                              "straggler/imbalance attribution of a fleet "
                              "report JSON (fleet_report or --json output)")
    monitor.add_argument("--once", action="store_true",
                         help="print the current health once and exit "
                              "(0 healthy / 1 SLO failing / 2 no report)")
    monitor.add_argument("--json", metavar="PATH",
                         help="(with --once) write the health report as "
                              "JSON ('-' = stdout)")
    monitor.add_argument("--interval", type=float, default=1.0,
                         help="live-view refresh seconds (default 1.0)")
    monitor.add_argument("--max-updates", type=int, default=None,
                         help="stop the live view after this many redraws")
    monitor.set_defaults(func=_cmd_monitor)

    profile = sub.add_parser(
        "profile", help="nvprof-style kernel profile of one GPU run"
    )
    _add_data_arguments(profile)
    _add_param_arguments(profile)
    profile.add_argument(
        "--backend",
        choices=sorted(b for b in BACKENDS if b.startswith("gpu")),
        default="gpu-fast",
    )
    profile.add_argument(
        "--json", metavar="PATH",
        help="write the profile as JSON instead of the table ('-' = stdout)",
    )
    profile.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the N most expensive kernels "
             "(the rest fold into one row)",
    )
    profile.set_defaults(func=_cmd_profile)

    explain = sub.add_parser(
        "explain",
        help="performance attribution: where the modeled seconds went",
    )
    _add_data_arguments(explain)
    _add_param_arguments(explain)
    explain.add_argument("--backend", choices=sorted(BACKENDS),
                         default="gpu-fast")
    explain.add_argument("--devices", type=int, default=2,
                         help="(fleet backends) modeled device count")
    explain.add_argument("--mixed", action="store_true",
                         help="(fleet backends) mixed 1660Ti/3090 fleet")
    explain.add_argument("--top", type=int, default=10, metavar="N",
                         help="kernels/movers to show (default 10)")
    explain.add_argument("--json", metavar="PATH",
                         help="write the repro.explain/1 report "
                              "('-' = stdout)")
    explain.add_argument("--flamegraph", metavar="PATH",
                         help="write a collapsed-stack flamegraph "
                              "(flamegraph.pl / inferno compatible)")
    explain.add_argument("--speedscope", metavar="PATH",
                         help="write a speedscope.app JSON profile")
    explain.add_argument("--workload", metavar="NAME",
                         help="attribute a quick-tier workload over its "
                              "baseline seeds instead of one ad-hoc run "
                              "(--json output is diffable vs the committed "
                              "baseline)")
    explain.add_argument("--diff", nargs=2, metavar=("A", "B"),
                         help="differential attribution between two runs: "
                              "repro.explain/1 reports or baseline records")
    explain.set_defaults(func=_cmd_explain)

    trace = sub.add_parser(
        "trace",
        help="run with tracing on: Perfetto trace + telemetry + ASCII timeline",
    )
    _add_data_arguments(trace)
    _add_param_arguments(trace)
    trace.add_argument("--backend", choices=sorted(BACKENDS), default="gpu-fast")
    trace.add_argument("--out", metavar="DIR", default="trace_out",
                       help="output directory (default trace_out)")
    trace.add_argument("--label", default="",
                       help="label stamped into the exported records")
    trace.add_argument(
        "--study-level", type=int, choices=[0, 1, 2, 3], default=None,
        help="trace a multi-param study at this reuse level instead of one run",
    )
    trace.add_argument("--ks", type=int, nargs="+", default=[12, 10, 8],
                       help="(with --study-level) k values")
    trace.add_argument("--ls", type=int, nargs="+", default=[7, 5, 3],
                       help="(with --study-level) l values")
    trace.set_defaults(func=_cmd_trace)

    sanitize = sub.add_parser(
        "sanitize",
        help="run every emulated kernel under the memory/race sanitizer",
    )
    sanitize.add_argument(
        "--all-kernels", action="store_true",
        help="sweep all kernels (the default when no --kernel is given)",
    )
    from .gpu_impl.sanitize import KERNELS

    sanitize.add_argument(
        "--kernel", action="append", metavar="NAME", choices=sorted(KERNELS),
        help=f"sweep only this kernel (repeatable); one of {', '.join(KERNELS)}",
    )
    sanitize.add_argument(
        "--schedules", type=int, default=2,
        help="schedule orders per geometry: in-order + N-1 shuffles (default 2)",
    )
    sanitize.add_argument("--seed", type=int, default=0,
                          help="input-generation seed (default 0)")
    sanitize.add_argument("--json", metavar="PATH",
                          help="also write the structured report as JSON")
    sanitize.set_defaults(func=_cmd_sanitize)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection sweep: each fault class x each GPU backend",
    )
    _add_data_arguments(chaos)
    _add_param_arguments(chaos)
    chaos.add_argument(
        "--backends", nargs="+", metavar="NAME",
        choices=sorted(
            b for b in BACKENDS if b.startswith(("gpu", "fleet-"))
        ),
        default=["gpu", "gpu-fast", "gpu-fast-star"],
        help="GPU backends to sweep (default: gpu gpu-fast gpu-fast-star)",
    )
    chaos.add_argument(
        "--fault", action="append", metavar="SPEC",
        help="custom fault spec 'kind[@site][#at[+count|+*]][?prob]' "
             "(repeatable; replaces the default per-class sweep)",
    )
    chaos.add_argument(
        "--fleet", action="store_true",
        help="device-loss sweep instead: kill each fleet member at each "
             "stage and require the bit-identical solo clustering after "
             "re-sharding (fleet-* backends only)",
    )
    chaos.add_argument(
        "--devices", type=int, default=3,
        help="fleet size for --fleet (default 3)",
    )
    chaos.add_argument(
        "--max-retries", type=int, default=3,
        help="transient-error retries per ladder rung (default 3)",
    )
    chaos.add_argument(
        "--json", metavar="PATH",
        help="write the structured event log as JSON ('-' = stdout)",
    )
    chaos.add_argument(
        "--record-dir", metavar="DIR",
        help="run under a flight recorder; dump a postmortem bundle "
             "there on any contract violation or terminal failure",
    )
    chaos.set_defaults(func=_cmd_chaos, n=4000, d=12, clusters=5, k=6, l=4)

    claims = sub.add_parser(
        "claims", help="check every quantitative claim of the paper"
    )
    claims.set_defaults(func=_cmd_claims)

    validate = sub.add_parser(
        "validate", help="check cross-variant clustering equivalence"
    )
    validate.add_argument("--n", type=int, default=2000)
    validate.add_argument("--d", type=int, default=10)
    validate.add_argument("--runs", type=int, default=3,
                          help="seeds to check (default 3)")
    validate.set_defaults(func=_cmd_validate)

    serve = sub.add_parser(
        "serve", help="process clustering requests from a spool directory"
    )
    serve.add_argument("spool", help="spool directory (created if missing)")
    serve.add_argument("--workers", type=int, default=2,
                       help="service worker threads (default 2)")
    serve.add_argument("--gpu", choices=sorted(GPU_SPECS), default="gtx1660ti",
                       help="modeled card for capacity decisions")
    serve.add_argument("--devices", type=int, default=None,
                       help="serve against a fleet of this many modeled "
                            "cards (fleet-* requests shard across them)")
    serve.add_argument("--cache-entries", type=int, default=64,
                       help="result-cache capacity (0 disables; default 64)")
    serve.add_argument("--once", action="store_true",
                       help="process the current requests and exit")
    serve.add_argument("--poll-seconds", type=float, default=0.2,
                       help="spool poll interval (default 0.2)")
    serve.add_argument("--max-batches", type=int, default=None,
                       help="stop after this many non-empty sweeps")
    serve.add_argument("--timeline", action="store_true",
                       help="print the queue/occupancy lanes at exit")
    serve.add_argument("--monitor-dir", metavar="DIR",
                       help="write live monitoring output (event log, "
                            "Prometheus scrape, health.json) here; flushed "
                            "on exit and on SIGTERM")
    serve.add_argument("--record-dir", metavar="DIR",
                       help="run under a flight recorder; terminal failures "
                            "and SIGTERM dump a postmortem bundle here "
                            "(inspect with 'repro postmortem DIR')")
    serve.add_argument("--record-capacity", type=int, default=256,
                       help="flight-recorder ring capacity per stream "
                            "(default 256)")
    serve.add_argument("--fault", action="append", metavar="SPEC",
                       help="inject faults into served jobs: "
                            "'kind[@site][#at[+count|+*]][?prob]' "
                            "(repeatable; e.g. device-down@dev1)")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="fault-injector seed (default 0)")
    serve.add_argument("--no-degrade", action="store_true",
                       help="forbid degradation: capacity errors and "
                            "exhausted retries fail the job instead of "
                            "stepping down the ladder")
    serve.add_argument("--max-retries", type=int, default=None,
                       help="transient-error retries per ladder rung")
    serve.add_argument("--max-reshards", type=int, default=None,
                       help="cap within-rung fleet re-shards after device "
                            "loss (0 makes any loss terminal)")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="drop one clustering request into a spool directory"
    )
    submit.add_argument("spool", help="spool directory (created if missing)")
    _add_data_arguments(submit)
    _add_param_arguments(submit)
    submit.add_argument("--backend", choices=sorted(BACKENDS),
                        default="gpu-fast")
    submit.add_argument("--npy", metavar="PATH",
                        help="cluster this saved array instead of "
                             "synthetic data")
    submit.add_argument("--id", help="request id (default: generated)")
    submit.add_argument("--priority", type=int, default=1,
                        help="queue priority, lower runs first (default 1)")
    submit.add_argument("--wait", type=float, metavar="SECONDS",
                        help="poll for the response this long and print it")
    submit.set_defaults(func=_cmd_submit)

    loadgen = sub.add_parser(
        "loadgen",
        help="replay a seeded request mix through the service "
             "(BENCH_serve.json)",
    )
    loadgen.add_argument("--requests", type=int, default=24,
                         help="requests to replay (default 24)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="mix seed (default 0)")
    loadgen.add_argument("--workers", type=int, default=2,
                         help="service worker threads (default 2)")
    loadgen.add_argument("--backends", nargs="+", metavar="NAME",
                         choices=sorted(BACKENDS), default=["gpu-fast"],
                         help="backend pool (default gpu-fast)")
    loadgen.add_argument("--datasets", type=int, default=2,
                         help="distinct datasets in the mix (default 2)")
    loadgen.add_argument("--n", type=int, default=600,
                         help="points per dataset (default 600)")
    loadgen.add_argument("--d", type=int, default=8,
                         help="dimensionality (default 8)")
    loadgen.add_argument("--clusters", type=int, default=4,
                         help="planted clusters (default 4)")
    loadgen.add_argument("--run-seeds", type=int, nargs="+", default=[0, 1],
                         help="algorithm seed pool (default 0 1)")
    loadgen.add_argument("--ks", type=int, nargs="+", default=[4],
                         help="k pool (default 4)")
    loadgen.add_argument("--ls", type=int, nargs="+", default=[3, 4, 5],
                         help="l pool (default 3 4 5)")
    loadgen.add_argument("--a", type=int, default=30, help="sample constant A")
    loadgen.add_argument("--b", type=int, default=5, help="medoid constant B")
    loadgen.add_argument("--cache-entries", type=int, default=64,
                         help="result-cache capacity (default 64)")
    loadgen.add_argument("--gpu", choices=sorted(GPU_SPECS),
                         default="gtx1660ti",
                         help="modeled card (default gtx1660ti)")
    loadgen.add_argument("--timeline", action="store_true",
                         help="print the queue/occupancy lanes")
    loadgen.add_argument("--json", metavar="PATH",
                         help="write the serve-bench report here")
    loadgen.add_argument("--monitor-dir", metavar="DIR",
                         help="also write live monitoring output here "
                              "(inspect with 'repro monitor DIR --once')")
    loadgen.add_argument("--postmortem-dir", metavar="DIR",
                         help="run under a flight recorder; a determinism "
                              "violation dumps a replayable postmortem "
                              "bundle here")
    loadgen.set_defaults(func=_cmd_loadgen)

    postmortem = sub.add_parser(
        "postmortem",
        help="analyze (and optionally replay) a postmortem bundle",
    )
    postmortem.add_argument(
        "bundle",
        help="bundle file, or a directory holding postmortem-*.json "
             "(newest wins)",
    )
    postmortem.add_argument(
        "--json", metavar="PATH",
        help="write the forensic analysis as JSON ('-' = stdout)",
    )
    postmortem.add_argument(
        "--replay", action="store_true",
        help="deterministically re-execute the recorded job from the "
             "bundle alone and check it reproduces the recorded failure "
             "(exit 1 when it does not)",
    )
    postmortem.set_defaults(func=_cmd_postmortem)

    info = sub.add_parser("info", help="list backends, datasets, hardware")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Expected failures — bad input files, invalid parameter combos,
    exhausted recovery — exit with code 2 and a one-line actionable
    message; ``--strict`` re-raises them instead.  An interrupted run
    exits 130 (the conventional SIGINT code).
    """
    import os

    parser = build_parser()
    args = parser.parse_args(argv)
    record_dir = os.environ.get("REPRO_FLIGHT_RECORDER")
    if record_dir:
        # Always-on failure capture for any subcommand: install an
        # ambient flight recorder whose bundles land in $REPRO_FLIGHT_RECORDER.
        from .obs import FlightRecorder, set_current_recorder

        set_current_recorder(FlightRecorder(bundle_dir=record_dir))
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        return 130
    except (ReproError, OSError) as error:
        if args.strict:
            raise
        print(f"repro: error: {error}", file=sys.stderr)
        print("repro: re-run with --strict for the full traceback",
              file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
