"""Resilient, checkpointable multi-parameter studies.

:func:`run_resilient_study` is the fault-tolerant counterpart of
:func:`repro.core.multiparam.run_study`: every setting runs through the
:class:`~repro.resilience.runner.ResilientRunner` (typed-error
classification, bounded retry, degradation ladder), and — when a
checkpoint directory is given — each completed setting is persisted so
a killed study resumes from the last completed setting with identical
final output (see :mod:`repro.resilience.checkpoint`).

The random protocol is *identical* to the plain driver's: one master
:class:`~repro.rng.RandomSource` builds the shared state, spawns each
setting's seed, and draws warm-start subsets in the same order.  A
fault-free resilient study therefore produces exactly the results of
``run_study``, and a faulted one — because retries restore RNG and
shared-cache state, and degraded rungs compute the identical clustering
on a different backend — produces them too.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.api import BACKENDS
from ..core.base import validate_data
from ..core.multiparam import (
    MultiParamResult,
    ReuseLevel,
    _count_duplicate_setting,
    _warn_duplicate_settings,
    build_shared_state,
)
from ..core.state import SharedStudyState
from ..exceptions import ParameterError
from ..obs.tracer import current_tracer
from ..params import ParameterGrid
from ..rng import RandomSource
from .checkpoint import StudyCheckpoint
from .policy import RetryPolicy
from .runner import ResilienceEvent, ResilientRunner

__all__ = ["run_resilient_study"]


def run_resilient_study(
    data: np.ndarray,
    backend: str = "gpu-fast",
    grid: ParameterGrid | None = None,
    level: ReuseLevel | int = ReuseLevel.WARM_START,
    seed: int | None = 0,
    policy: RetryPolicy | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    **engine_kwargs,
) -> MultiParamResult:
    """Run a (k, l) study with retry/degradation and checkpoint/resume.

    Parameters
    ----------
    data:
        Min-max normalized ``(n, d)`` dataset.
    backend:
        Starting backend; individual settings may degrade along the
        policy's ladder (recorded in the returned ``events``).
    grid, level, seed, engine_kwargs:
        As in :func:`repro.run_parameter_study`.
    policy:
        Retry/degradation policy (defaults to :class:`RetryPolicy`).
    checkpoint_dir:
        When given, persist progress here after every setting.
    resume:
        Resume from ``checkpoint_dir`` if it holds a compatible
        manifest; a fresh study otherwise.  Raises
        :class:`~repro.exceptions.CheckpointError` when the manifest
        belongs to different data, grid, backend, or level.
    """
    if backend not in BACKENDS:
        raise ParameterError(
            f"unknown backend {backend!r}; "
            f"available: {', '.join(sorted(BACKENDS))}"
        )
    data = validate_data(data)
    grid = grid if grid is not None else ParameterGrid()
    level = ReuseLevel(level)
    backend_name = BACKENDS[backend].backend_name
    runner = ResilientRunner(policy)
    obs = current_tracer()

    checkpoint = (
        StudyCheckpoint(checkpoint_dir) if checkpoint_dir is not None else None
    )
    master = RandomSource(seed)
    shared: SharedStudyState | None = None
    previous_best: np.ndarray | None = None
    completed: dict[tuple[int, int], object] = {}
    events: list[ResilienceEvent] = []

    if resume and checkpoint is not None and checkpoint.exists():
        manifest = checkpoint.validate_resume(data, grid, backend, level)
        for k, l in manifest["completed"]:
            completed[(int(k), int(l))] = checkpoint.load_setting(k, l)
        if manifest["rng_state"] is not None:
            master = RandomSource.from_state(manifest["rng_state"])
        if manifest["previous_best"] is not None:
            previous_best = np.asarray(manifest["previous_best"], dtype=np.int64)
        shared = checkpoint.load_shared()
        events.append(
            ResilienceEvent(
                kind="resume",
                rung=backend,
                attempt=0,
                detail=f"{len(completed)} completed settings loaded from "
                       f"{checkpoint.directory}",
            )
        )
        with obs.span(
            "resume", category="resilience",
            completed=len(completed), directory=str(checkpoint.directory),
        ):
            pass
        if obs.enabled:
            obs.metrics.counter("resilience.resumes").inc()
    elif checkpoint is not None:
        checkpoint.begin(data, grid, backend, level, seed)

    with obs.span(
        "study", category="study",
        backend=backend_name, level=int(level), settings=len(grid),
        resilient=True,
    ):
        shared_span_id = None
        if level >= ReuseLevel.PARTIAL_RESULTS and not completed:
            with obs.span("shared_state", category="study") as shared_span:
                shared = build_shared_state(data, grid, master)
            shared_span_id = shared_span.span_id

        study = MultiParamResult(level=level, backend=backend_name, events=events)
        previous_span_id = None
        first = not completed
        duplicates: list[tuple[int, int]] = []
        for params in grid:
            key = (params.k, params.l)
            if key in study.results:
                duplicates.append(key)
                _count_duplicate_setting(obs)
                continue
            if key in completed:
                # Already persisted by the interrupted run; the master
                # RNG state restored from the manifest already reflects
                # this setting's draws.
                study.results[key] = completed[key]
                study.total_stats = study.total_stats.merge(
                    completed[key].stats
                )
                continue
            initial = None
            if (
                level >= ReuseLevel.WARM_START
                and previous_best is not None
                and params.k <= len(previous_best)
            ):
                if params.k == len(previous_best):
                    initial = previous_best.copy()
                else:
                    initial = master.generator.choice(
                        previous_best, size=params.k, replace=False
                    )
            charge_greedy = level <= ReuseLevel.PARTIAL_RESULTS or first
            setting_span = obs.span(
                "setting", category="study",
                k=params.k, l=params.l,
                warm_start=initial is not None,
                charge_greedy=charge_greedy,
            )
            setting_span.link(shared_span_id)
            if initial is not None:
                setting_span.link(previous_span_id)
            with setting_span:
                outcome = runner.fit(
                    data,
                    backend=backend,
                    params=params,
                    seed=master.spawn(),
                    shared_state=shared,
                    initial_medoids=initial,
                    charge_greedy=charge_greedy,
                    engine_kwargs=engine_kwargs,
                )
                setting_span.set(
                    attempts=outcome.attempts,
                    degraded=outcome.degraded,
                    backend_used=outcome.backend,
                )
            events.extend(outcome.events)
            study.results[key] = outcome.result
            study.total_stats = study.total_stats.merge(outcome.result.stats)
            if level >= ReuseLevel.WARM_START:
                previous_best = outcome.best_positions
            previous_span_id = setting_span.span_id
            first = False
            if checkpoint is not None:
                with obs.span(
                    "checkpoint", category="resilience",
                    k=params.k, l=params.l,
                ):
                    path = checkpoint.record_setting(
                        params.k, params.l, outcome.result,
                        master, previous_best, shared,
                    )
                events.append(
                    ResilienceEvent(
                        kind="checkpoint",
                        rung=outcome.rung,
                        attempt=outcome.attempts,
                        detail=str(path),
                    )
                )
                if obs.enabled:
                    obs.metrics.counter("resilience.checkpoints").inc()
        _warn_duplicate_settings(duplicates)
        study.total_stats.backend = backend_name
        return study
