"""Fault injection + resilient execution for the simulated GPU substrate.

The production north star needs runs that survive device mishaps; the
simulated substrate lets us *test* that deterministically.  This
package provides the three layers (see ``docs/robustness.md``):

* :mod:`repro.resilience.faults` — a deterministic, seedable fault
  injector threaded into allocations, kernel launches, transfers, and
  emulated kernels;
* :mod:`repro.resilience.policy` / :mod:`repro.resilience.runner` —
  typed-error classification, bounded retry with RNG-state
  restoration, and the degradation ladder
  (GPU-FAST → chunked cache → GPU-PROCLUS → CPU FAST-PROCLUS);
* :mod:`repro.resilience.checkpoint` / :mod:`repro.resilience.study` —
  checkpoint/resume for multi-parameter studies.

Quickstart::

    from repro.resilience import (
        FaultInjector, ResilientRunner, RetryPolicy, use_injector,
    )

    injector = FaultInjector(["transient@compute_l.*#2"], seed=0)
    with use_injector(injector):
        outcome = ResilientRunner(RetryPolicy()).fit(
            data, backend="gpu-fast", seed=0
        )
    outcome.result      # identical to the fault-free clustering
    outcome.events      # the retries/degradations that got it there
"""

from .checkpoint import StudyCheckpoint, data_fingerprint
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    InjectionRecord,
    current_injector,
    parse_fault,
    use_injector,
)
from .policy import (
    DEFAULT_LADDERS,
    ErrorClass,
    LadderStep,
    RetryPolicy,
    classify_error,
    default_ladder,
    reshard_ladder,
)
from .runner import (
    ResilienceEvent,
    ResilientOutcome,
    ResilientRunner,
    resilient_fit,
)
from .study import run_resilient_study

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultInjector",
    "InjectionRecord",
    "parse_fault",
    "current_injector",
    "use_injector",
    "ErrorClass",
    "classify_error",
    "LadderStep",
    "RetryPolicy",
    "DEFAULT_LADDERS",
    "default_ladder",
    "reshard_ladder",
    "ResilienceEvent",
    "ResilientOutcome",
    "ResilientRunner",
    "resilient_fit",
    "StudyCheckpoint",
    "data_fingerprint",
    "run_resilient_study",
]
