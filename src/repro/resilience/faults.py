"""Deterministic, seedable fault injection for the GPU substrate.

A real GPU cannot fail on demand; the simulated device can.  The
:class:`FaultInjector` threads into every operation of the substrate —
allocations (:mod:`repro.gpu.memory`), kernel launches and host<->device
transfers (:mod:`repro.gpu.device`), and emulated kernel launches
(:mod:`repro.gpu.emulator`) — and raises the *same typed errors the
substrate itself would raise*, so recovery code cannot distinguish an
injected fault from an organic one.

Fault classes (``FaultSpec.kind``):

==============  ====================================================
kind            raises / fires on
==============  ====================================================
``oom``         :class:`~repro.exceptions.DeviceOutOfMemoryError`
                on a device allocation
``launch``      :class:`~repro.exceptions.KernelLaunchError` on a
                kernel launch (non-sticky: the context survives)
``transient``   :class:`~repro.exceptions.TransientDeviceError` on a
                kernel launch; *sticky* by default — every subsequent
                operation fails until :meth:`FaultInjector.device_reset`
``corrupt``     :class:`~repro.exceptions.TransferCorruptionError` on
                a host<->device transfer (ECC-style, detected)
``timeout``     :class:`~repro.exceptions.KernelTimeoutError` on a
                kernel launch (vectorized or emulated) — the watchdog
``device-down`` :class:`~repro.exceptions.DeviceLostError` on *any*
                operation; the matched device is dead permanently —
                every later alloc/launch/transfer naming it raises,
                and :meth:`FaultInjector.device_reset` does **not**
                bring it back (only :meth:`FaultInjector.revive`)
==============  ====================================================

Schedules are deterministic: a spec fires on the Nth operation whose
name matches its ``site`` pattern (``fnmatch`` syntax), or with a
seeded per-operation probability.  Two runs with the same schedule and
seed inject the identical fault sequence, which is what makes the
determinism-under-faults differential tests possible.

Installation is ambient (a :class:`contextvars.ContextVar`, mirroring
:mod:`repro.obs.tracer`): the substrate hooks read
:func:`current_injector` and are a single ``None`` check when no
injector is installed.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Iterator

import numpy as np

from ..exceptions import (
    DeviceLostError,
    DeviceOutOfMemoryError,
    KernelLaunchError,
    KernelTimeoutError,
    ParameterError,
    TransferCorruptionError,
    TransientDeviceError,
)
from ..obs.recorder import current_recorder

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "InjectionRecord",
    "FaultInjector",
    "parse_fault",
    "current_injector",
    "use_injector",
]

#: Fault kind -> the substrate operation it targets.  ``"any"`` means
#: the spec is evaluated on every operation class (device loss strikes
#: whatever touches the device next).
FAULT_KINDS: dict[str, str] = {
    "oom": "alloc",
    "launch": "launch",
    "transient": "launch",
    "corrupt": "transfer",
    "timeout": "launch",
    "device-down": "any",
}

_DEVICE_TAG_RE = re.compile(r"^dev\d+$")

#: ``count`` value meaning "keep firing forever".
FOREVER = -1


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        Fault class, one of :data:`FAULT_KINDS`.
    site:
        ``fnmatch`` pattern matched (case-sensitively) against the
        operation name: the allocation name for ``oom``, the kernel
        name for launch-class faults, ``h2d:<name>``/``d2h:<name>``
        for transfers.  ``*`` (the default) matches every operation.
        For ``device-down``, a bare device tag (``dev1``) is shorthand
        for ``*@dev1`` — the first operation touching that fleet shard
        kills it.
    at:
        Fire on the Nth *matching* operation (1-based).
    count:
        How many consecutive matching operations fire, starting at
        ``at``; :data:`FOREVER` (-1) keeps firing.
    probability:
        When set, ignore ``at``/``count`` and fire each matching
        operation with this probability (drawn from the injector's
        seeded generator — deterministic per schedule).
    sticky:
        Only meaningful for ``transient``: whether the device context
        is poisoned until :meth:`FaultInjector.device_reset`.
    """

    kind: str
    site: str = "*"
    at: int = 1
    count: int = 1
    probability: float | None = None
    sticky: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ParameterError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(sorted(FAULT_KINDS))}"
            )
        if self.at < 1:
            raise ParameterError(f"fault 'at' must be >= 1, got {self.at}")
        if self.count < 1 and self.count != FOREVER:
            raise ParameterError(
                f"fault 'count' must be >= 1 or {FOREVER} (forever), "
                f"got {self.count}"
            )
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ParameterError(
                f"fault probability must be in (0, 1], got {self.probability}"
            )

    @property
    def operation(self) -> str:
        """The substrate operation this spec targets (``"any"`` = all)."""
        return FAULT_KINDS[self.kind]

    @property
    def site_pattern(self) -> str:
        """The effective ``fnmatch`` pattern (expands device shorthand)."""
        if self.kind == "device-down" and _DEVICE_TAG_RE.match(self.site):
            return f"*@{self.site}"
        return self.site

    def describe(self) -> str:
        """Compact one-line rendering (the parseable schedule syntax)."""
        text = f"{self.kind}@{self.site}"
        if self.probability is not None:
            text += f"?{self.probability!r}"
        elif self.at != 1 or self.count != 1:
            text += f"#{self.at}"
            if self.count == FOREVER:
                text += "+*"
            elif self.count != 1:
                text += f"+{self.count}"
        if self.kind == "transient" and not self.sticky:
            text += "!nonsticky"
        return text


_FAULT_RE = re.compile(
    r"^(?P<kind>[a-z][a-z-]*)"
    r"(?:@(?P<site>[^#?!]+))?"
    r"(?:\#(?P<at>\d+)(?:\+(?P<count>\d+|\*))?)?"
    r"(?:\?(?P<prob>[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?))?"
    r"(?P<nonsticky>!nonsticky)?$"
)


def parse_fault(text: str) -> FaultSpec:
    """Parse the CLI schedule syntax into a :class:`FaultSpec`.

    Syntax: ``kind[@site][#at[+count|+*]][?probability][!nonsticky]``.
    Examples: ``oom@Dist``, ``launch@assign_points#3``,
    ``transient@compute_l.*#2``, ``corrupt@d2h:*``, ``oom#2+*``
    (every allocation from the 2nd on), ``timeout?0.25``,
    ``device-down@dev1`` (kill fleet shard 1 on first touch).
    """
    match = _FAULT_RE.match(text.strip())
    if match is None:
        raise ParameterError(f"unparseable fault spec {text!r}")
    count_text = match.group("count")
    count = (
        1 if count_text is None
        else FOREVER if count_text == "*"
        else int(count_text)
    )
    prob_text = match.group("prob")
    try:
        probability = float(prob_text) if prob_text else None
    except ValueError as exc:  # pragma: no cover - regex forbids this
        raise ParameterError(
            f"unparseable fault probability in {text!r}"
        ) from exc
    return FaultSpec(
        kind=match.group("kind"),
        site=match.group("site") or "*",
        at=int(match.group("at") or 1),
        count=count,
        probability=probability,
        sticky=match.group("nonsticky") is None,
    )


@dataclass(slots=True)
class InjectionRecord:
    """One injected fault (for event logs and assertions)."""

    kind: str
    operation: str
    site: str
    sequence: int  #: 1-based index among matching operations of the spec
    spec: str  #: the firing spec, in schedule syntax


class FaultInjector:
    """Evaluates fault schedules against substrate operations.

    Construct with a list of :class:`FaultSpec` (or schedule strings)
    and install with :func:`use_injector`; the substrate hooks call
    :meth:`on_alloc` / :meth:`on_launch` / :meth:`on_transfer` /
    :meth:`on_emulated_launch`, which raise the scheduled typed errors.
    All firings are appended to :attr:`injected`.
    """

    def __init__(
        self,
        schedule: Iterator[FaultSpec | str] | list[FaultSpec | str] = (),
        seed: int = 0,
    ) -> None:
        self.schedule: list[FaultSpec] = [
            spec if isinstance(spec, FaultSpec) else parse_fault(spec)
            for spec in schedule
        ]
        self._rng = np.random.default_rng(seed)
        self._seed = seed
        #: Per-spec count of operations that matched so far.
        self._matches = [0] * len(self.schedule)
        self.injected: list[InjectionRecord] = []
        self._sticky_error: str | None = None
        #: Tags of permanently lost devices (``"dev1"``, or ``"device"``
        #: for an untagged solo card).  Survives :meth:`device_reset`.
        self._dead_devices: set[str] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def device_reset(self) -> None:
        """Clear a sticky error (models context teardown + rebuild).

        A lost device stays lost: resets rebuild the context, not the
        hardware.
        """
        self._sticky_error = None

    def revive(self, device: str | None = None) -> None:
        """Bring a lost device back (models physical replacement).

        ``device`` is one tag (``"dev1"``); ``None`` revives everything.
        """
        if device is None:
            self._dead_devices.clear()
        else:
            self._dead_devices.discard(device)

    @property
    def sticky_failed(self) -> bool:
        """Whether the device context is currently poisoned."""
        return self._sticky_error is not None

    @property
    def dead_devices(self) -> frozenset[str]:
        """Tags of the devices lost so far."""
        return frozenset(self._dead_devices)

    @property
    def seed(self) -> int:
        """The probability-draw seed (recorded into postmortem bundles)."""
        return self._seed

    # ------------------------------------------------------------------
    # Schedule evaluation
    # ------------------------------------------------------------------
    def _firing_spec(self, operation: str, name: str) -> tuple[FaultSpec, int] | None:
        """The first spec firing on this operation, if any.

        ``device-down`` specs are evaluated separately (by
        :meth:`_check_lost`, which runs on every operation class).
        """
        for index, spec in enumerate(self.schedule):
            if spec.kind == "device-down" or spec.operation != operation:
                continue
            if not fnmatchcase(name, spec.site_pattern):
                continue
            self._matches[index] += 1
            seen = self._matches[index]
            if spec.probability is not None:
                if self._rng.random() < spec.probability:
                    return spec, seen
            elif seen >= spec.at and (
                spec.count == FOREVER or seen < spec.at + spec.count
            ):
                return spec, seen
        return None

    def _record(self, spec: FaultSpec, operation: str, name: str, seen: int) -> None:
        record = InjectionRecord(
            kind=spec.kind,
            operation=operation,
            site=name,
            sequence=seen,
            spec=spec.describe(),
        )
        self.injected.append(record)
        recorder = current_recorder()
        if recorder is not None:
            recorder.record_fault(record)

    def _check_sticky(self) -> None:
        if self._sticky_error is not None:
            raise TransientDeviceError(
                f"device context poisoned by earlier sticky error "
                f"({self._sticky_error}); reset required",
                sticky=True,
            )

    @staticmethod
    def _device_tag(name: str) -> str:
        """The device an operation name addresses.

        Fleet shard operations carry an ``@dev{i}`` suffix; anything
        else runs on the (single) ambient device, tagged ``"device"``.
        """
        if "@" in name:
            tag = name.rsplit("@", 1)[1]
            if _DEVICE_TAG_RE.match(tag):
                return tag
        return "device"

    def _check_lost(self, operation: str, name: str) -> None:
        """Raise when ``name`` addresses a dead device; else evaluate
        any ``device-down`` spec and, on a firing, kill the device."""
        if self._dead_devices:
            tag = self._device_tag(name)
            if tag in self._dead_devices or "device" in self._dead_devices:
                error = DeviceLostError(
                    f"{operation} {name!r} failed: device {tag} is lost",
                    device=tag,
                )
                error.injected = True
                raise error
        fired = self._firing_spec_down(operation, name)
        if fired is None:
            return
        spec, seen = fired
        tag = self._device_tag(name)
        if tag == "device" and _DEVICE_TAG_RE.match(spec.site):
            tag = spec.site  # targeted member, op not yet suffixed
        self._dead_devices.add(tag)
        self._record(spec, operation, name, seen)
        error = DeviceLostError(
            f"device {tag} fell off the bus during {operation} {name!r}",
            device=tag,
        )
        error.injected = True
        raise error

    def _firing_spec_down(
        self, operation: str, name: str
    ) -> tuple[FaultSpec, int] | None:
        """Like :meth:`_firing_spec`, restricted to ``device-down``."""
        for index, spec in enumerate(self.schedule):
            if spec.kind != "device-down":
                continue
            if not fnmatchcase(name, spec.site_pattern):
                continue
            self._matches[index] += 1
            seen = self._matches[index]
            if spec.probability is not None:
                if self._rng.random() < spec.probability:
                    return spec, seen
            elif seen >= spec.at and (
                spec.count == FOREVER or seen < spec.at + spec.count
            ):
                return spec, seen
        return None

    # ------------------------------------------------------------------
    # Substrate hooks
    # ------------------------------------------------------------------
    def on_alloc(self, name: str, nbytes: int, free: int, total: int) -> None:
        """Called by :meth:`repro.gpu.memory.MemoryManager.alloc`."""
        self._check_sticky()
        self._check_lost("alloc", name)
        fired = self._firing_spec("alloc", name)
        if fired is None:
            return
        spec, seen = fired
        self._record(spec, "alloc", name, seen)
        error = DeviceOutOfMemoryError(nbytes, min(free, max(0, nbytes - 1)), total)
        error.injected = True
        raise error

    def on_launch(self, name: str, phase: str) -> None:
        """Called by :meth:`repro.gpu.device.Device.launch`."""
        self._check_sticky()
        self._check_lost("launch", name)
        fired = self._firing_spec("launch", name)
        if fired is None:
            return
        spec, seen = fired
        self._record(spec, "launch", name, seen)
        if spec.kind == "transient":
            if spec.sticky:
                self._sticky_error = f"{name} ({phase})"
            error: Exception = TransientDeviceError(
                f"transient failure launching {name!r} in phase {phase!r}",
                sticky=spec.sticky,
            )
        elif spec.kind == "timeout":
            error = KernelTimeoutError(
                f"kernel {name!r} exceeded the watchdog time limit"
            )
        else:
            error = KernelLaunchError(f"injected launch failure for {name!r}")
        error.injected = True
        raise error

    def on_transfer(self, direction: str, name: str, nbytes: int) -> None:
        """Called by ``Device.to_device`` / ``Device.to_host``."""
        self._check_sticky()
        site = f"{direction}:{name}"
        self._check_lost("transfer", site)
        fired = self._firing_spec("transfer", site)
        if fired is None:
            return
        spec, seen = fired
        self._record(spec, "transfer", site, seen)
        error = TransferCorruptionError(
            f"ECC error detected on {direction} transfer of {name!r} "
            f"({nbytes} B)"
        )
        error.injected = True
        raise error

    def on_emulated_launch(self, name: str) -> None:
        """Called by :meth:`repro.gpu.emulator.SimtEmulator.launch`."""
        # Emulated launches share the launch-class schedule.
        self.on_launch(name, "emulated")


_current: ContextVar[FaultInjector | None] = ContextVar(
    "repro_fault_injector", default=None
)


def current_injector() -> FaultInjector | None:
    """The ambient fault injector (``None`` unless installed)."""
    return _current.get()


@contextmanager
def use_injector(injector: FaultInjector | None):
    """Install ``injector`` as the ambient injector for a ``with`` block."""
    token = _current.set(injector)
    try:
        yield injector
    finally:
        _current.reset(token)
