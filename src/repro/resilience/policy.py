"""Error taxonomy and retry/degradation policy.

Every error the substrate can raise is classified into one of three
classes, which determines the recovery action:

* **TRANSIENT** — launch failures, sticky context errors, detected
  transfer corruption, watchdog timeouts.  The operation is expected to
  succeed on retry after a device reset; retried up to
  :attr:`RetryPolicy.max_retries` times per ladder rung with
  deterministic exponential backoff.
* **CAPACITY** — the working set exceeded device memory.  Retrying the
  same configuration cannot succeed; the runner immediately steps down
  the degradation ladder to a configuration with a smaller resident
  working set (chunked ``Dist`` cache) or a cheaper backend.
* **DEVICE_LOSS** — a fleet member (or the solo card) fell off the bus
  permanently.  A fleet run re-shards over the surviving members and
  retries the same rung (:mod:`repro.fleet.recovery`); a solo run can
  only degrade to a rung that avoids the dead device.
* **FATAL** — user errors (bad data, bad parameters) and internal
  invariant violations (use-after-free, emulation errors).  Never
  retried; re-raised unchanged.

The **degradation ladder** orders configurations from fastest to most
conservative.  Because every PROCLUS variant in this repository
produces the identical clustering for the same seed (the paper's
correctness claim, enforced by the equivalence tests), stepping down
the ladder changes *where* the work runs, never *what* is computed —
a degraded run returns the bit-identical result.

The documented default ladder for ``gpu-fast`` is::

    gpu-fast  ->  gpu-fast (Dist cache chunked 2x, then 4x)
              ->  gpu      (GPU-PROCLUS: no resident cache)
              ->  fast     (CPU FAST-PROCLUS)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..exceptions import (
    DataValidationError,
    DeviceError,
    DeviceLostError,
    DeviceOutOfMemoryError,
    EmulationError,
    KernelLaunchError,
    KernelTimeoutError,
    ParameterError,
    ReproError,
    TransferCorruptionError,
    TransientDeviceError,
)

__all__ = [
    "ErrorClass",
    "classify_error",
    "LadderStep",
    "RetryPolicy",
    "default_ladder",
    "reshard_ladder",
]


class ErrorClass(enum.Enum):
    """Recovery class of an error (see module docstring)."""

    TRANSIENT = "transient"
    CAPACITY = "capacity"
    DEVICE_LOSS = "device-loss"
    FATAL = "fatal"


def classify_error(error: BaseException) -> ErrorClass:
    """Classify an exception into its recovery class.

    Order matters: the loss and capacity subclasses are checked before
    the generic device classes, and user errors before the
    :class:`ReproError` catch-all.
    """
    if isinstance(error, DeviceLostError):
        return ErrorClass.DEVICE_LOSS
    if isinstance(error, DeviceOutOfMemoryError):
        return ErrorClass.CAPACITY
    if isinstance(
        error,
        (
            TransientDeviceError,
            TransferCorruptionError,
            KernelTimeoutError,
            KernelLaunchError,
        ),
    ):
        return ErrorClass.TRANSIENT
    if isinstance(error, (DataValidationError, ParameterError)):
        return ErrorClass.FATAL
    if isinstance(error, (DeviceError, EmulationError, ReproError)):
        # Use-after-free, double free, sanitizer findings, emulator
        # divergence: deterministic bugs, not conditions to retry.
        return ErrorClass.FATAL
    return ErrorClass.FATAL


@dataclass(frozen=True, slots=True)
class LadderStep:
    """One rung of the degradation ladder.

    ``engine_kwargs`` are merged over the caller's kwargs when the rung
    is tried (e.g. ``{"dist_chunks": 2}`` to chunk the resident Dist
    cache).
    """

    backend: str
    engine_kwargs: dict = field(default_factory=dict)

    def describe(self) -> str:
        if not self.engine_kwargs:
            return self.backend
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(self.engine_kwargs.items())
        )
        return f"{self.backend}({rendered})"


#: Default degradation ladders per starting backend.  Backends without
#: an entry degrade only by retrying in place (a one-rung ladder).
DEFAULT_LADDERS: dict[str, tuple[LadderStep, ...]] = {
    "gpu-fast": (
        LadderStep("gpu-fast"),
        LadderStep("gpu-fast", {"dist_chunks": 2}),
        LadderStep("gpu-fast", {"dist_chunks": 4}),
        LadderStep("gpu"),
        LadderStep("fast"),
    ),
    "gpu-fast-star": (
        LadderStep("gpu-fast-star"),
        LadderStep("gpu"),
        LadderStep("fast-star"),
    ),
    "gpu": (
        LadderStep("gpu"),
        LadderStep("fast"),
    ),
    # Sharded fleet backends degrade within the fleet first (chunked
    # cache, simpler variant), then fall back to the solo card, then to
    # CPU — the same answer at every rung, only the substrate changes.
    "fleet-gpu-fast": (
        LadderStep("fleet-gpu-fast"),
        LadderStep("fleet-gpu-fast", {"dist_chunks": 2}),
        LadderStep("fleet-gpu"),
        LadderStep("gpu-fast"),
        LadderStep("gpu"),
        LadderStep("fast"),
    ),
    "fleet-gpu-fast-star": (
        LadderStep("fleet-gpu-fast-star"),
        LadderStep("fleet-gpu"),
        LadderStep("gpu-fast-star"),
        LadderStep("fast-star"),
    ),
    "fleet-gpu": (
        LadderStep("fleet-gpu"),
        LadderStep("gpu"),
        LadderStep("fast"),
    ),
}


def default_ladder(backend: str) -> tuple[LadderStep, ...]:
    """The documented ladder for ``backend`` (one rung when unknown)."""
    return DEFAULT_LADDERS.get(backend, (LadderStep(backend),))


def reshard_ladder(backend: str, devices: int) -> tuple[LadderStep, ...]:
    """An explicit elastic ladder for a ``fleet-*`` backend.

    ``fleet(D)`` -> ``fleet(D-1)`` -> ... -> ``fleet(2)`` -> the
    backend's default ladder minus its fleet rungs (solo GPU, then
    CPU).  Every rung returns the bit-identical clustering; the fleet
    rungs carry ``{"fleet": d}`` so the engine builds a ``d``-card
    default fleet.  :class:`~repro.resilience.runner.ResilientRunner`
    additionally re-shards *within* a rung on device loss — this ladder
    is the static fallback for schedulers that want the shrinkage
    spelled out.
    """
    if not backend.startswith("fleet-"):
        raise ParameterError(
            f"reshard_ladder needs a fleet-* backend, got {backend!r}"
        )
    if devices < 1:
        raise ParameterError(f"devices must be >= 1, got {devices}")
    rungs = [LadderStep(backend, {"fleet": d}) for d in range(devices, 1, -1)]
    tail = [
        step for step in default_ladder(backend)
        if not step.backend.startswith("fleet-")
    ]
    return tuple(rungs) + tuple(tail)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded-retry + degradation policy for :class:`ResilientRunner`.

    Parameters
    ----------
    max_retries:
        Transient-error retries per ladder rung before stepping down.
    backoff_base:
        Base of the deterministic exponential backoff: attempt ``i``
        (1-based) waits ``backoff_base * 2**(i - 1)`` seconds.  The
        delay is always *recorded* on the retry event; it is only
        *slept* when positive, so tests run with ``0.0``.
    ladder:
        Explicit degradation ladder; the backend's default when
        omitted.  An empty tuple means "the starting configuration
        only" (no degradation).
    allow_degraded:
        When ``False``, capacity errors and exhausted retries raise
        instead of stepping down the ladder.
    max_reshards:
        Cap on within-rung fleet re-shards after device loss.  ``None``
        (the default) keeps the elastic behaviour — up to one re-shard
        per fleet member; ``0`` makes any device loss terminal for the
        rung (useful for postmortem drills and strict capacity tests).
    """

    max_retries: int = 3
    backoff_base: float = 0.0
    ladder: tuple[LadderStep, ...] | None = None
    allow_degraded: bool = True
    max_reshards: int | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ParameterError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not self.backoff_base >= 0.0:
            raise ParameterError(
                f"backoff_base must be finite and >= 0, got {self.backoff_base}"
            )
        if self.max_reshards is not None and self.max_reshards < 0:
            raise ParameterError(
                f"max_reshards must be >= 0 or None, got {self.max_reshards}"
            )

    def ladder_for(self, backend: str) -> tuple[LadderStep, ...]:
        """Resolve the ladder for a starting backend."""
        if self.ladder is not None:
            return self.ladder if self.ladder else (LadderStep(backend),)
        if not self.allow_degraded:
            return (LadderStep(backend),)
        ladder = default_ladder(backend)
        if ladder[0].backend != backend:  # pragma: no cover - defensive
            ladder = (LadderStep(backend), *ladder)
        return ladder

    def backoff_seconds(self, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` (1-based)."""
        return self.backoff_base * (2 ** max(0, attempt - 1))
