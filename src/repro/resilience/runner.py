"""Resilient execution of one PROCLUS fit.

:class:`ResilientRunner` wraps engine construction +
:meth:`~repro.core.base.EngineBase.fit` with the recovery loop the
:class:`~repro.resilience.policy.RetryPolicy` describes:

1. classify the error (:func:`~repro.resilience.policy.classify_error`);
2. **FATAL** — re-raise unchanged;
3. **TRANSIENT** — reset the device context (clearing sticky errors),
   restore the RNG state and the shared study state to their
   pre-attempt snapshots, wait the deterministic backoff, and retry the
   *same* ladder rung (at most ``max_retries`` times);
4. **DEVICE_LOSS** on a fleet rung — re-shard elastically: zero the
   dead members' weights (:func:`~repro.fleet.recovery.plan_recovery`,
   which re-runs the exact largest-remainder partition over the
   survivors), resume from the engine's ``IterativeState`` checkpoint
   when the run writes one, and retry the *same* rung on the shrunken
   fleet — recorded as a ``reshard`` event/span with
   ``fleet.recovery.*`` counters (reshards, devices lost, MTTR);
5. **CAPACITY** (or exhausted retries / unrecoverable loss) — step
   down the degradation ladder and start over on the next rung.

Because engines are single-use and every attempt restores the RNG and
shared-cache state bit-for-bit, a retried or degraded run produces the
clustering the fault-free run would have produced — the determinism
guarantee the differential tests assert.

Every recovery action is recorded as a :class:`ResilienceEvent`, and —
when a tracer is installed — emitted as a ``resilience``-category span
plus ``resilience.*`` metrics counters, so ``repro trace`` shows
exactly where a run retried or degraded.

When a :class:`~repro.obs.recorder.FlightRecorder` is ambient, the
runner additionally captures the replayable job context (data, params,
seed state, policy, fault schedule) at entry, forwards every
resilience event into the recorder's rings, extends the ambient
correlation id per attempt (``<parent>:r<rung>a<attempt>``), and — on
:class:`~repro.exceptions.ResilienceExhaustedError` — auto-dumps a
postmortem bundle before raising.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..core.state import SharedStudyState
from ..exceptions import ParameterError, ReproError, ResilienceExhaustedError
from ..obs.recorder import (
    current_correlation,
    current_recorder,
    use_correlation,
)
from ..obs.tracer import current_tracer
from ..result import ProclusResult
from ..rng import RandomSource
from .faults import current_injector
from .policy import ErrorClass, LadderStep, RetryPolicy, classify_error

__all__ = ["ResilienceEvent", "ResilientOutcome", "ResilientRunner", "resilient_fit"]

#: Engine kwargs that only GPU backends accept; dropped when a ladder
#: rung degrades to a CPU backend.
_GPU_ONLY_KWARGS = ("gpu_spec", "dist_chunks")

#: Engine kwargs that only the sharded ``fleet-*`` backends accept;
#: dropped when a ladder rung degrades to a solo backend.
_FLEET_ONLY_KWARGS = ("fleet",)


@dataclass(slots=True)
class ResilienceEvent:
    """One recovery action taken by the runner."""

    kind: str  #: "retry" | "degrade" | "reshard" | "checkpoint" | "resume"
    rung: str  #: ladder rung description (e.g. "gpu-fast(dist_chunks=2)")
    attempt: int  #: attempt number on that rung (1-based)
    error_type: str = ""  #: class name of the triggering error
    error_class: str = ""  #: transient / capacity / device-loss / fatal
    detail: str = ""  #: the error message (or checkpoint path)
    backoff_s: float = 0.0  #: deterministic backoff recorded before retry
    to_rung: str = ""  #: target rung of a "degrade"/"reshard" event
    recovery_s: float = 0.0  #: wall seconds from a "reshard" to success

    def as_dict(self) -> dict[str, Any]:
        """Plain-data form for JSON event logs."""
        return asdict(self)


@dataclass(slots=True)
class ResilientOutcome:
    """Result of a resilient fit plus its recovery history."""

    result: ProclusResult
    backend: str  #: backend that actually produced the result
    rung: str  #: full rung description, incl. degradation kwargs
    attempts: int  #: total fit attempts across all rungs
    events: list[ResilienceEvent] = field(default_factory=list)
    best_positions: np.ndarray | None = None  #: for study warm starts

    @property
    def degraded(self) -> bool:
        """Whether the result came from a lower rung than requested."""
        return any(event.kind == "degrade" for event in self.events)


def _forward_resilience(event: "ResilienceEvent") -> None:
    """Mirror one recovery action into the ambient flight recorder."""
    recorder = current_recorder()
    if recorder is not None:
        recorder.record_resilience(event.as_dict())


def _snapshot_shared(shared: SharedStudyState | None) -> dict[str, Any] | None:
    """Copy the mutable parts of a shared study state."""
    if shared is None:
        return None
    cache = shared.cache
    return {
        "dist": cache.dist.copy(),
        "dist_found": cache.dist_found.copy(),
        "h": cache.h.copy(),
        "prev_delta": cache.prev_delta.copy(),
        "size_l": cache.size_l.copy(),
        "data_uploaded": shared.data_uploaded,
    }


def _restore_shared(shared: SharedStudyState | None, snap: dict[str, Any] | None) -> None:
    """Restore a snapshot in place (other references stay valid)."""
    if shared is None or snap is None:
        return
    cache = shared.cache
    cache.dist[...] = snap["dist"]
    cache.dist_found[...] = snap["dist_found"]
    cache.h[...] = snap["h"]
    cache.prev_delta[...] = snap["prev_delta"]
    cache.size_l[...] = snap["size_l"]
    shared.data_uploaded = snap["data_uploaded"]


class ResilientRunner:
    """Runs engine fits under a :class:`RetryPolicy` (see module doc)."""

    def __init__(self, policy: RetryPolicy | None = None) -> None:
        self.policy = policy if policy is not None else RetryPolicy()

    # ------------------------------------------------------------------
    def fit(
        self,
        data: np.ndarray,
        backend: str = "gpu-fast",
        params=None,
        seed: int | RandomSource | None = 0,
        shared_state: SharedStudyState | None = None,
        initial_medoids: np.ndarray | None = None,
        charge_greedy: bool = True,
        engine_kwargs: dict[str, Any] | None = None,
    ) -> ResilientOutcome:
        """Fit ``backend`` on ``data``, recovering per the policy."""
        from ..core.api import BACKENDS  # deferred: api imports engines

        if backend not in BACKENDS:
            raise ParameterError(
                f"unknown backend {backend!r}; "
                f"available: {', '.join(sorted(BACKENDS))}"
            )
        policy = self.policy
        ladder = policy.ladder_for(backend)
        engine_kwargs = dict(engine_kwargs or {})
        obs = current_tracer()

        rng_snapshot = seed.get_state() if isinstance(seed, RandomSource) else None
        shared_snapshot = _snapshot_shared(shared_state)

        recorder = current_recorder()
        base_corr = current_correlation() or "fit"
        if recorder is not None:
            recorder.set_job(
                data=data, backend=backend, params=params, seed=seed,
                policy=policy, engine_kwargs=engine_kwargs,
            )
            injector = current_injector()
            if injector is not None and injector.schedule:
                recorder.set_fault_schedule(
                    [spec.describe() for spec in injector.schedule],
                    injector.seed,
                )

        events: list[ResilienceEvent] = []
        attempts = 0
        rung_index = 0
        last_error: ReproError | None = None
        #: Reshard events awaiting their recovery-time stamp, member
        #: indices already counted as lost, reshards taken so far.
        pending_reshards: list[tuple[ResilienceEvent, float]] = []
        known_dead: set[int] = set()
        reshards = 0
        #: Rung label after an elastic re-shard, e.g.
        #: "fleet-gpu-fast[2/3 devices]" — reported on the outcome so
        #: callers see which shard plan actually produced the result.
        reshard_label: str | None = None
        while rung_index < len(ladder):
            step = ladder[rung_index]
            rung_attempt = 0
            while True:
                rung_attempt += 1
                attempts += 1
                engine = None
                self._reset_for_attempt(seed, rng_snapshot, shared_state,
                                        shared_snapshot, attempts)
                attempt_span = obs.span(
                    "attempt", category="resilience",
                    rung=step.describe(), backend=step.backend,
                    attempt=rung_attempt,
                )
                attempt_corr = f"{base_corr}:r{rung_index}a{rung_attempt}"
                try:
                    with use_correlation(attempt_corr), attempt_span:
                        engine = BACKENDS[step.backend](
                            params=params,
                            seed=seed,
                            shared_state=shared_state,
                            initial_medoids=initial_medoids,
                            charge_greedy=charge_greedy,
                            **self._merge_kwargs(step, engine_kwargs),
                        )
                        result = engine.fit(data)
                        attempt_span.set(outcome="ok")
                    self._finalize_reshards(obs, pending_reshards)
                    return ResilientOutcome(
                        result=result,
                        backend=step.backend,
                        rung=reshard_label or step.describe(),
                        attempts=attempts,
                        events=events,
                        best_positions=getattr(engine, "best_positions_", None),
                    )
                except ReproError as error:
                    error_class = classify_error(error)
                    attempt_span.set(
                        outcome="error",
                        error_type=type(error).__name__,
                        error_class=error_class.value,
                    )
                    if error_class is ErrorClass.FATAL:
                        raise
                    last_error = error
                    if error_class is ErrorClass.DEVICE_LOSS:
                        plan = self._reshard_plan(step, engine, error)
                        reshard_cap = (
                            policy.max_reshards
                            if policy.max_reshards is not None
                            else plan.fleet.num_devices
                            if plan is not None
                            else 0
                        )
                        if plan is not None and reshards < reshard_cap:
                            reshards += 1
                            newly = [
                                index for index in plan.dead
                                if index not in known_dead
                            ]
                            known_dead.update(plan.dead)
                            engine_kwargs["fleet"] = plan.survivors
                            resume = self._resume_path(step, engine_kwargs)
                            if resume is not None:
                                engine_kwargs["resume_from"] = resume
                            event = self._record_reshard(
                                obs, events, step, rung_attempt, error,
                                error_class, plan, len(newly), resume,
                            )
                            reshard_label = event.to_rung
                            pending_reshards.append(
                                (event, time.perf_counter())
                            )
                            continue
                        break  # nothing left to re-shard onto: degrade
                    if (
                        error_class is ErrorClass.TRANSIENT
                        and rung_attempt <= policy.max_retries
                    ):
                        self._record_retry(
                            obs, events, step, rung_attempt, error, error_class
                        )
                        continue
                    break  # capacity, or transient retries exhausted
            # Step down the ladder.
            if rung_index + 1 < len(ladder) and policy.allow_degraded:
                self._record_degrade(
                    obs, events, step, ladder[rung_index + 1],
                    rung_attempt, last_error,
                )
                rung_index += 1
                reshard_label = None
                continue
            exhausted = ResilienceExhaustedError(
                f"all recovery options exhausted after {attempts} attempts "
                f"over {rung_index + 1} ladder rungs "
                f"(last error: {type(last_error).__name__}: {last_error})",
                last_error=last_error,
                events=events,
            )
            if recorder is not None:
                recorder.record_failure("resilience-exhausted", exhausted)
                recorder.auto_dump("resilience-exhausted", exhausted)
            raise exhausted
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _merge_kwargs(step: LadderStep, engine_kwargs: dict[str, Any]) -> dict[str, Any]:
        merged = dict(engine_kwargs)
        if not step.backend.startswith(("gpu", "fleet-")):
            for key in _GPU_ONLY_KWARGS:
                merged.pop(key, None)
        if not step.backend.startswith("fleet-"):
            for key in _FLEET_ONLY_KWARGS:
                merged.pop(key, None)
        merged.update(step.engine_kwargs)
        return merged

    @staticmethod
    def _reset_for_attempt(
        seed, rng_snapshot, shared_state, shared_snapshot, attempts: int
    ) -> None:
        """Restore pre-attempt state (no-op on the very first attempt)."""
        injector = current_injector()
        if injector is not None:
            injector.device_reset()
        if attempts == 1:
            return
        if rng_snapshot is not None:
            seed.set_state(rng_snapshot)
        _restore_shared(shared_state, shared_snapshot)

    @staticmethod
    def _reshard_plan(step: LadderStep, engine, error):
        """The elastic re-shard plan for a fleet rung's device loss.

        ``None`` when the rung is not a fleet rung, the dead members
        cannot be identified, or no member with capacity survives.
        """
        if not step.backend.startswith("fleet-"):
            return None
        fleet = getattr(engine, "fleet", None)
        if fleet is None:
            return None
        from ..fleet.recovery import dead_device_indices, plan_recovery

        tags = set()
        injector = current_injector()
        if injector is not None:
            tags |= set(injector.dead_devices)
        device = getattr(error, "device", "")
        if device:
            tags.add(device)
        dead = dead_device_indices(tags)
        if not dead:
            return None
        return plan_recovery(fleet, dead)

    @staticmethod
    def _resume_path(step: LadderStep, engine_kwargs: dict) -> "str | None":
        """The IterativeState checkpoint to resume from, if one exists.

        Runs configured with ``checkpoint_path`` persist their loop
        state every ``checkpoint_every`` iterations (PR 3 machinery);
        a re-sharded attempt resumes the current iteration from that
        snapshot instead of replaying from scratch.  Runs without
        checkpointing replay fully — which also reproduces the solo
        work counters bit for bit.
        """
        merged = {**engine_kwargs, **step.engine_kwargs}
        path = merged.get("checkpoint_path")
        if path and Path(path).exists():
            return str(path)
        return None

    @staticmethod
    def _record_reshard(
        obs, events, step: LadderStep, attempt: int, error, error_class,
        plan, newly_lost: int, resume: "str | None",
    ) -> ResilienceEvent:
        to_rung = (
            f"{step.backend}[{plan.active}/{plan.fleet.num_devices} devices]"
        )
        detail = plan.describe()
        if resume is not None:
            detail += f"; resuming from {resume}"
        event = ResilienceEvent(
            kind="reshard",
            rung=step.describe(),
            attempt=attempt,
            error_type=type(error).__name__,
            error_class=error_class.value,
            detail=detail,
            to_rung=to_rung,
        )
        events.append(event)
        _forward_resilience(event)
        with obs.span(
            "reshard", category="resilience",
            rung=event.rung, to_rung=to_rung,
            error_type=event.error_type, devices_lost=newly_lost,
        ):
            pass
        if obs.enabled:
            obs.metrics.counter("fleet.recovery.reshards").inc()
            obs.metrics.counter("fleet.recovery.devices_lost").inc(newly_lost)
            obs.metrics.counter(f"resilience.faults.{error_class.value}").inc()
        return event

    @staticmethod
    def _finalize_reshards(obs, pending: list) -> None:
        """Stamp recovery wall time (MTTR) on completed reshards.

        ``recovery_s`` is wall-clock and therefore *excluded* from the
        event-log determinism contract (everything else in the log is
        bit-reproducible for a fixed seed + schedule).
        """
        for event, started in pending:
            recovery = time.perf_counter() - started
            event.recovery_s = recovery
            if obs.enabled:
                obs.metrics.counter("fleet.recovery.mttr_seconds").inc(
                    recovery
                )
                obs.metrics.histogram("fleet.recovery.mttr").observe(recovery)
        pending.clear()

    def _record_retry(
        self, obs, events, step: LadderStep, attempt: int, error, error_class
    ) -> None:
        backoff = self.policy.backoff_seconds(attempt)
        event = ResilienceEvent(
            kind="retry",
            rung=step.describe(),
            attempt=attempt,
            error_type=type(error).__name__,
            error_class=error_class.value,
            detail=str(error),
            backoff_s=backoff,
        )
        events.append(event)
        _forward_resilience(event)
        with obs.span(
            "retry", category="resilience",
            rung=event.rung, attempt=attempt,
            error_type=event.error_type, backoff_s=backoff,
        ):
            if backoff > 0.0:
                time.sleep(backoff)
        if obs.enabled:
            obs.metrics.counter("resilience.retries").inc()
            obs.metrics.counter(f"resilience.faults.{error_class.value}").inc()

    @staticmethod
    def _record_degrade(
        obs, events, step: LadderStep, next_step: LadderStep, attempt, error
    ) -> None:
        error_class = classify_error(error)
        event = ResilienceEvent(
            kind="degrade",
            rung=step.describe(),
            attempt=attempt,
            error_type=type(error).__name__,
            error_class=error_class.value,
            detail=str(error),
            to_rung=next_step.describe(),
        )
        events.append(event)
        _forward_resilience(event)
        with obs.span(
            "degrade", category="resilience",
            rung=event.rung, to_rung=event.to_rung,
            error_type=event.error_type, error_class=event.error_class,
        ):
            pass
        if obs.enabled:
            obs.metrics.counter("resilience.degradations").inc()
            obs.metrics.counter(f"resilience.faults.{error_class.value}").inc()


def resilient_fit(
    data: np.ndarray,
    backend: str = "gpu-fast",
    policy: RetryPolicy | None = None,
    **kwargs: Any,
) -> ResilientOutcome:
    """Convenience wrapper: one resilient fit with a fresh runner."""
    return ResilientRunner(policy).fit(data, backend=backend, **kwargs)
