"""Study checkpoint/resume: survive a killed ``run_parameter_study``.

A :class:`StudyCheckpoint` is a directory:

.. code-block:: text

    <dir>/
        manifest.json          # schema, grid, seed, progress, RNG state
        shared_state.npz       # sample, medoids, FAST cache (levels >= 1)
        setting_k12_l7.npz     # one save_result() file per completed
        setting_k12_l5.npz     # (k, l) setting
        ...

The manifest is written *after* the setting's result file via an
atomic ``os.replace``, so a kill at any point leaves the manifest
referencing only complete files.  On resume the driver validates the
data fingerprint, grid, backend, and reuse level against the manifest
(raising :class:`~repro.exceptions.CheckpointError` on mismatch),
reloads the completed settings, restores the master RNG — including
its spawn counter, so later settings draw the same per-setting seeds —
the shared study state, and the warm-start medoids, and continues from
the first incomplete setting.  The resumed study's saved results are
identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
import zipfile
from dataclasses import asdict
from pathlib import Path
from typing import Any

import numpy as np

from ..core.serialization import load_result, save_result
from ..core.state import MedoidCache, SharedStudyState
from ..data.fingerprint import dataset_fingerprint
from ..exceptions import CheckpointError, DataValidationError
from ..params import ParameterGrid
from ..result import ProclusResult
from ..rng import RandomSource

__all__ = ["StudyCheckpoint", "data_fingerprint"]

SCHEMA = "repro.study_checkpoint/1"

#: Kept as this module's historical name for the shared helper; the
#: serve registry and the checkpoint validation hash datasets the same
#: way (memory-order invariant, dtype robust — see
#: :mod:`repro.data.fingerprint`).
data_fingerprint = dataset_fingerprint


class StudyCheckpoint:
    """Progress of one parameter study persisted to a directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    @property
    def shared_path(self) -> Path:
        return self.directory / "shared_state.npz"

    def setting_path(self, k: int, l: int) -> Path:
        return self.directory / f"setting_k{k}_l{l}.npz"

    def exists(self) -> bool:
        """Whether a manifest is present (i.e. a study to resume)."""
        return self.manifest_path.exists()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def begin(
        self,
        data: np.ndarray,
        grid: ParameterGrid,
        backend: str,
        level: int,
        seed: Any,
    ) -> None:
        """Start a fresh checkpoint (clears any previous progress)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        self._manifest = {
            "schema": SCHEMA,
            "backend": backend,
            "level": int(level),
            "seed": seed if isinstance(seed, (int, type(None))) else None,
            "grid": {
                "ks": list(grid.ks),
                "ls": list(grid.ls),
                "base": asdict(grid.base),
            },
            "data_fingerprint": data_fingerprint(data),
            "completed": [],
            "rng_state": None,
            "previous_best": None,
        }
        self._write_manifest()

    def record_setting(
        self,
        k: int,
        l: int,
        result: ProclusResult,
        master: RandomSource,
        previous_best: np.ndarray | None,
        shared: SharedStudyState | None,
    ) -> Path:
        """Persist one completed setting + the state to continue after it.

        Write order matters for crash consistency: the result file and
        shared-state snapshot land first, the manifest (which is what a
        resume trusts) is atomically replaced last.
        """
        path = save_result(result, self.setting_path(k, l))
        if shared is not None:
            self._save_shared(shared)
        manifest = self._manifest
        manifest["completed"].append([int(k), int(l)])
        manifest["rng_state"] = master.get_state()
        manifest["previous_best"] = (
            None if previous_best is None
            else [int(p) for p in previous_best]
        )
        self._write_manifest()
        return path

    def _write_manifest(self) -> None:
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self._manifest, indent=1))
        os.replace(tmp, self.manifest_path)

    def _save_shared(self, shared: SharedStudyState) -> None:
        cache = shared.cache
        # numpy appends ".npz" when the name lacks it, so the temp file
        # must already end in ".npz" for the atomic rename to find it.
        tmp = self.shared_path.with_name("shared_state.tmp.npz")
        np.savez_compressed(
            tmp,
            sample_indices=shared.sample_indices,
            medoid_ids=shared.medoid_ids,
            dist=cache.dist,
            dist_found=cache.dist_found,
            h=cache.h,
            prev_delta=cache.prev_delta,
            size_l=cache.size_l,
            data_uploaded=np.array(shared.data_uploaded),
        )
        os.replace(tmp, self.shared_path)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load_manifest(self) -> dict[str, Any]:
        """Read and schema-check the manifest."""
        if not self.manifest_path.exists():
            raise CheckpointError(
                f"no checkpoint manifest at {self.manifest_path}"
            )
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest {self.manifest_path}: {exc}"
            ) from exc
        if manifest.get("schema") != SCHEMA:
            raise CheckpointError(
                f"{self.manifest_path} has schema "
                f"{manifest.get('schema')!r}, expected {SCHEMA!r}"
            )
        self._manifest = manifest
        return manifest

    def validate_resume(
        self,
        data: np.ndarray,
        grid: ParameterGrid,
        backend: str,
        level: int,
    ) -> dict[str, Any]:
        """Check that the checkpoint belongs to this exact study."""
        manifest = self.load_manifest()
        try:
            fingerprint = manifest["data_fingerprint"]
            recorded = manifest["grid"]
            recorded_ks = recorded["ks"]
            recorded_ls = recorded["ls"]
            recorded_base = recorded["base"]
            recorded_backend = manifest["backend"]
            recorded_level = manifest["level"]
        except (KeyError, TypeError) as exc:
            # A truncated-but-valid-JSON manifest must not surface as a
            # raw KeyError.
            raise CheckpointError(
                f"checkpoint manifest {self.manifest_path} is incomplete "
                f"(missing {exc}); refusing to resume"
            ) from exc
        if fingerprint != data_fingerprint(data):
            raise CheckpointError(
                "checkpoint was written for a different dataset "
                "(fingerprint mismatch); refusing to resume"
            )
        if (
            list(grid.ks) != recorded_ks
            or list(grid.ls) != recorded_ls
            or asdict(grid.base) != recorded_base
        ):
            raise CheckpointError(
                "checkpoint was written for a different parameter grid; "
                "refusing to resume"
            )
        if recorded_backend != backend or recorded_level != int(level):
            raise CheckpointError(
                f"checkpoint was written for backend="
                f"{recorded_backend!r} level={recorded_level}, "
                f"got backend={backend!r} level={int(level)}"
            )
        return manifest

    def load_setting(self, k: int, l: int) -> ProclusResult:
        """Load one completed setting's result.

        Missing or corrupt setting files surface as
        :class:`~repro.exceptions.CheckpointError` naming the file.
        """
        path = self.setting_path(k, l)
        if not path.exists():
            raise CheckpointError(
                f"manifest lists setting (k={k}, l={l}) as completed but "
                f"{path} is missing"
            )
        try:
            return load_result(path)
        except DataValidationError as exc:
            raise CheckpointError(
                f"setting file {path} is corrupt: {exc}"
            ) from exc

    def load_shared(self) -> SharedStudyState | None:
        """Restore the shared study state snapshot (None when absent).

        A corrupt or truncated snapshot raises
        :class:`~repro.exceptions.CheckpointError` naming the file —
        never a raw zipfile/KeyError.
        """
        if not self.shared_path.exists():
            return None
        try:
            with np.load(self.shared_path, allow_pickle=False) as archive:
                cache = MedoidCache(
                    dist=archive["dist"].copy(),
                    dist_found=archive["dist_found"].copy(),
                    h=archive["h"].copy(),
                    prev_delta=archive["prev_delta"].copy(),
                    size_l=archive["size_l"].copy(),
                )
                return SharedStudyState(
                    sample_indices=archive["sample_indices"].copy(),
                    medoid_ids=archive["medoid_ids"].copy(),
                    cache=cache,
                    data_uploaded=bool(archive["data_uploaded"]),
                )
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise CheckpointError(
                f"shared-state snapshot {self.shared_path} is unreadable "
                f"or incomplete: {exc!r}"
            ) from exc
