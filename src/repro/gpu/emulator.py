"""Cooperative SIMT emulator: runs CUDA-style kernels thread by thread.

Kernels are written as Python functions over a :class:`ThreadContext`
that exposes the CUDA built-ins (``blockIdx``, ``threadIdx``,
``blockDim``, ``gridDim``), per-block shared memory, and barrier
synchronization.  A kernel that needs ``__syncthreads()`` must be a
*generator* function and ``yield`` at each barrier; the emulator runs
all threads of a block in lock-step rounds between barriers, which is
exactly the guarantee ``__syncthreads`` provides.

The emulator is intentionally simple and slow (it exists to validate
the vectorized kernel implementations on small inputs, not to run
production workloads).  It optionally shuffles the intra-round thread
execution order so tests can verify that kernel results do not depend
on scheduling — the property that makes the paper's atomics-based
kernels "fully correct with respect to the PROCLUS definition".
"""

from __future__ import annotations

import inspect
import itertools
from typing import Any, Callable, Iterable

import numpy as np

from ..exceptions import EmulationError, KernelLaunchError
from ..obs.tracer import current_tracer
from .memory import ambient_injector
from .sanitizer import Sanitizer

__all__ = ["ThreadContext", "SharedMemory", "SimtEmulator"]

Dim = int | tuple[int, ...]


def _as_tuple(dim: Dim) -> tuple[int, ...]:
    if isinstance(dim, (int, np.integer)):
        return (int(dim),)
    return tuple(int(x) for x in dim)


class SharedMemory:
    """Per-block shared memory: named arrays visible to all block threads."""

    def __init__(self, sanitizer: Sanitizer | None = None) -> None:
        self._arrays: dict[str, np.ndarray] = {}
        self._sanitizer = sanitizer

    def array(
        self,
        name: str,
        shape: int | tuple[int, ...],
        dtype: np.dtype | type = np.float32,
        fill: float | None = None,
    ) -> np.ndarray:
        """Return the named shared array, allocating it on first use.

        All threads of a block receive the same array object; the
        ``fill`` value is applied only by the allocating (first) call,
        mirroring a single-thread initialization in CUDA.  Without
        ``fill`` the contents are garbage, exactly as ``__shared__``
        memory is on hardware — the sanitizer flags reads before any
        thread has written.
        """
        if name not in self._arrays:
            if isinstance(shape, (int, np.integer)):
                shape = (int(shape),)
            if fill is None:
                data = np.empty(shape, dtype=dtype)
            else:
                data = np.full(shape, fill, dtype=dtype)
            if self._sanitizer is not None:
                data = self._sanitizer.track(
                    data,
                    label=f"shared:{name}",
                    space="shared",
                    uninitialized=fill is None,
                )
            self._arrays[name] = data
        return self._arrays[name]

    def items(self) -> Iterable[tuple[str, np.ndarray]]:
        """The allocated (name, array) pairs — for post-launch inspection."""
        return self._arrays.items()

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._arrays.values())


class ThreadContext:
    """The view one emulated thread has of the launch (CUDA built-ins)."""

    __slots__ = ("block_idx", "thread_idx", "grid_dim", "block_dim", "shared")

    def __init__(
        self,
        block_idx: tuple[int, ...],
        thread_idx: tuple[int, ...],
        grid_dim: tuple[int, ...],
        block_dim: tuple[int, ...],
        shared: SharedMemory,
    ) -> None:
        self.block_idx = block_idx
        self.thread_idx = thread_idx
        self.grid_dim = grid_dim
        self.block_dim = block_dim
        self.shared = shared

    @property
    def bx(self) -> int:
        """First component of ``blockIdx``."""
        return self.block_idx[0]

    @property
    def by(self) -> int:
        """Second component of ``blockIdx`` (0 for 1-D grids)."""
        return self.block_idx[1] if len(self.block_idx) > 1 else 0

    @property
    def tx(self) -> int:
        """First component of ``threadIdx``."""
        return self.thread_idx[0]

    @property
    def block_threads(self) -> int:
        """Total threads per block."""
        return int(np.prod(self.block_dim))

    @property
    def global_id(self) -> int:
        """Flat global thread id (1-D launches)."""
        return self.bx * self.block_dim[0] + self.tx

    def grid_stride(self, count: int) -> range:
        """Grid-stride loop over ``count`` items for 1-D launches.

        Mirrors the paper's "if the for-loop has more iterations than
        threads, each thread handles multiple iterations".
        """
        total_threads = int(np.prod(self.grid_dim)) * self.block_threads
        return range(self.global_id, count, total_threads)

    def grid_stride_x(self, count: int) -> range:
        """Grid-stride loop over ``count`` items along the grid's x axis.

        For 2-D launches where the y axis indexes an entity (e.g. a
        medoid) and the x blocks tile the points.
        """
        start = self.bx * self.block_dim[0] + self.tx
        step = self.grid_dim[0] * self.block_dim[0]
        return range(start, count, step)

    def block_stride(self, count: int) -> range:
        """Block-stride loop: this thread's share of ``count`` items
        distributed across the threads of its own block."""
        return range(self.tx, count, self.block_dim[0])


class SimtEmulator:
    """Executes kernels with faithful block/thread/barrier semantics."""

    def __init__(
        self,
        schedule_seed: int | None = None,
        sanitizer: Sanitizer | None = None,
    ) -> None:
        """``schedule_seed``: when given, thread execution order within
        each lock-step round is shuffled deterministically, exposing any
        illegal dependence on thread ordering.

        ``sanitizer``: when given, every launch runs instrumented — all
        element accesses are logged and analyzed for out-of-bounds
        accesses, uninitialized shared reads, and races (see
        :mod:`repro.gpu.sanitizer`); findings accumulate in
        ``sanitizer.report``.
        """
        self._rng = (
            np.random.default_rng(schedule_seed) if schedule_seed is not None else None
        )
        self.launches = 0
        self.sanitizer = sanitizer
        #: Per-block shared memory of the most recent launch, keyed by
        #: block index — lets the schedule-independence checker compare
        #: scratch state that the outputs alone would not expose.
        self.last_shared: dict[tuple[int, ...], SharedMemory] = {}

    def launch(
        self,
        kernel: Callable[..., Any],
        grid_dim: Dim,
        block_dim: Dim,
        *args: Any,
        sanitize: bool = False,
    ) -> None:
        """Run ``kernel`` over the launch grid to completion.

        ``sanitize=True`` instruments this launch (creating a
        :class:`~repro.gpu.sanitizer.Sanitizer` on first use if the
        emulator was not constructed with one).
        """
        grid = _as_tuple(grid_dim)
        block = _as_tuple(block_dim)
        if any(g <= 0 for g in grid) or any(b <= 0 for b in block):
            raise KernelLaunchError(
                f"invalid launch configuration grid={grid} block={block}"
            )
        self.launches += 1
        kname = getattr(kernel, "__name__", repr(kernel))
        injector = ambient_injector()
        if injector is not None:
            injector.on_emulated_launch(kname)
        if sanitize and self.sanitizer is None:
            self.sanitizer = Sanitizer()
        san = self.sanitizer
        run_args = args if san is None else self._tracked_args(san, kernel, args)
        if san is not None:
            san.begin_launch(kname)
        is_generator = inspect.isgeneratorfunction(kernel)
        self.last_shared = {}
        obs = current_tracer()
        t0 = obs.now() if obs.enabled else 0.0
        try:
            for block_idx in itertools.product(*(range(g) for g in grid)):
                shared = SharedMemory(sanitizer=san)
                self.last_shared[block_idx] = shared
                contexts = [
                    ThreadContext(block_idx, thread_idx, grid, block, shared)
                    for thread_idx in itertools.product(*(range(b) for b in block))
                ]
                if is_generator:
                    self._run_block_with_barriers(kernel, contexts, run_args, san)
                else:
                    self._run_block_plain(kernel, contexts, run_args, san)
        finally:
            if san is not None:
                san.end_launch()
            if obs.enabled:
                blocks = 1
                for g in grid:
                    blocks *= g
                threads = 1
                for b in block:
                    threads *= b
                obs.kernel(
                    kname,
                    kname.removeprefix("_").removesuffix("_kernel"),
                    "emulated",
                    t0,
                    obs.now() - t0,
                    clock="wall",
                    grid_blocks=blocks,
                    threads_per_block=threads,
                )

    @staticmethod
    def _tracked_args(
        san: Sanitizer, kernel: Callable[..., Any], args: tuple[Any, ...]
    ) -> tuple[Any, ...]:
        """Wrap array arguments in sanitizer-instrumented views."""
        try:
            names = list(inspect.signature(kernel).parameters)[1:]
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            names = []
        return tuple(
            san.track(a, label=names[i] if i < len(names) else f"arg{i}")
            if isinstance(a, np.ndarray)
            else a
            for i, a in enumerate(args)
        )

    def _order(self, items: list[Any]) -> Iterable[Any]:
        if self._rng is None:
            return items
        order = self._rng.permutation(len(items))
        return (items[i] for i in order)

    def _run_block_plain(
        self,
        kernel: Callable[..., Any],
        contexts: list[ThreadContext],
        args: tuple[Any, ...],
        san: Sanitizer | None = None,
    ) -> None:
        # No barriers: every access of the block shares one epoch.
        for ctx in self._order(contexts):
            if san is not None:
                san.set_thread(ctx.block_idx, ctx.thread_idx, 0)
            kernel(ctx, *args)
        if san is not None:
            san.clear_thread()

    def _run_block_with_barriers(
        self,
        kernel: Callable[..., Any],
        contexts: list[ThreadContext],
        args: tuple[Any, ...],
        san: Sanitizer | None = None,
    ) -> None:
        threads = [kernel(ctx, *args) for ctx in contexts]
        active = list(range(len(threads)))
        epoch = 0
        while active:
            at_barrier: list[int] = []
            for i in self._order(active):
                if san is not None:
                    ctx = contexts[i]
                    san.set_thread(ctx.block_idx, ctx.thread_idx, epoch)
                try:
                    next(threads[i])
                except StopIteration:
                    continue
                at_barrier.append(i)
            if san is not None:
                san.clear_thread()
            if at_barrier and len(at_barrier) != len(active):
                raise EmulationError(
                    "divergent __syncthreads(): "
                    f"{len(at_barrier)} of {len(active)} threads reached the barrier"
                )
            active = at_barrier
            epoch += 1
