"""CUDA occupancy calculator, reproducing the Section 5.4 utilization study.

The paper reports NVIDIA Nsight Compute readings (theoretical occupancy,
achieved occupancy, memory throughput) for the most interesting kernels.
Both quantities are closed-form functions of the launch configuration
and the SM resource limits:

* *theoretical occupancy* — resident warps per SM divided by the SM's
  maximum warps, where the number of resident blocks is limited by the
  per-SM thread, block, register, and shared-memory budgets;
* *achieved occupancy* — the same ratio using the number of blocks that
  actually land on an SM: when a launch has fewer blocks than would fill
  the device (e.g. the ``k x k`` medoid-distance kernel of Algorithm 3),
  each active SM holds only one small block and the achieved occupancy
  collapses, exactly as the paper's 3.12 % reading shows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hardware.specs import GpuSpec

__all__ = ["OccupancyReport", "occupancy_report", "best_block_size"]


@dataclass(frozen=True, slots=True)
class OccupancyReport:
    """Occupancy figures for one kernel launch on one GPU."""

    gpu: str
    grid_blocks: int
    threads_per_block: int
    resident_blocks_per_sm: int
    theoretical_occupancy: float
    achieved_occupancy: float
    limiter: str

    def as_percentages(self) -> tuple[float, float]:
        """Return ``(theoretical %, achieved %)`` like Nsight prints them."""
        return (
            round(self.theoretical_occupancy * 100.0, 2),
            round(self.achieved_occupancy * 100.0, 2),
        )


def _resident_blocks(
    spec: GpuSpec,
    threads_per_block: int,
    registers_per_thread: int,
    smem_bytes_per_block: int,
) -> tuple[int, str]:
    """Blocks of the launch that fit on one SM, and the binding limit."""
    warps = math.ceil(threads_per_block / spec.warp_size)
    threads_rounded = warps * spec.warp_size
    limits = {
        "blocks": spec.max_blocks_per_sm,
        "threads": max(1, spec.max_threads_per_sm // threads_rounded),
    }
    if registers_per_thread > 0:
        regs_per_block = registers_per_thread * threads_rounded
        # A block whose registers exceed the SM's file cannot launch at
        # all (cudaErrorLaunchOutOfResources on real hardware).
        limits["registers"] = spec.registers_per_sm // regs_per_block
    if smem_bytes_per_block > 0:
        limits["shared memory"] = spec.shared_mem_per_sm // smem_bytes_per_block
    limiter = min(limits, key=limits.get)  # type: ignore[arg-type]
    return limits[limiter], limiter


def occupancy_report(
    spec: GpuSpec,
    grid_blocks: int,
    threads_per_block: int,
    registers_per_thread: int = 32,
    smem_bytes_per_block: int = 0,
) -> OccupancyReport:
    """Compute theoretical and achieved occupancy for a launch."""
    if grid_blocks < 1 or threads_per_block < 1:
        raise ValueError(
            f"invalid launch grid={grid_blocks} block={threads_per_block}"
        )
    if threads_per_block > spec.max_threads_per_block:
        raise ValueError(
            f"block size {threads_per_block} exceeds device limit "
            f"{spec.max_threads_per_block}"
        )
    resident, limiter = _resident_blocks(
        spec, threads_per_block, registers_per_thread, smem_bytes_per_block
    )
    if resident < 1:
        raise ValueError(
            f"a {threads_per_block}-thread block with "
            f"{registers_per_thread} registers/thread and "
            f"{smem_bytes_per_block} B shared memory cannot launch on "
            f"{spec.name} (per-SM {limiter} budget exceeded)"
        )
    warps_per_block = math.ceil(threads_per_block / spec.warp_size)
    max_warps = spec.max_threads_per_sm // spec.warp_size
    theoretical = min(1.0, resident * warps_per_block / max_warps)
    # Blocks that actually land on each active SM (round-robin placement).
    # A launch with fewer blocks than SMs leaves each active SM with a
    # single block, so achieved occupancy is that one block's warps over
    # the SM's warp capacity (the paper's 3.12 % for the k x k kernel).
    blocks_on_active_sm = min(resident, math.ceil(grid_blocks / spec.sm_count))
    achieved = min(1.0, blocks_on_active_sm * warps_per_block / max_warps)
    achieved = min(achieved, theoretical)
    return OccupancyReport(
        gpu=spec.name,
        grid_blocks=grid_blocks,
        threads_per_block=threads_per_block,
        resident_blocks_per_sm=resident,
        theoretical_occupancy=theoretical,
        achieved_occupancy=achieved,
        limiter=limiter,
    )


def best_block_size(
    spec: GpuSpec,
    work_items: int,
    registers_per_thread: int = 32,
    smem_bytes_per_block: int = 0,
    candidates: tuple[int, ...] = (64, 128, 256, 512, 1024),
) -> tuple[int, OccupancyReport]:
    """Pick the block size maximizing achieved occupancy for a launch.

    ``work_items`` is the number of threads the kernel needs in total;
    the grid is sized as ``ceil(work_items / block)``.  Ties break
    toward larger blocks (fewer launches' worth of scheduling overhead).
    Returns ``(block_size, report)``.
    """
    if work_items < 1:
        raise ValueError(f"work_items must be >= 1, got {work_items}")
    best: tuple[int, OccupancyReport] | None = None
    for block in candidates:
        block = min(block, spec.max_threads_per_block)
        grid = max(1, math.ceil(work_items / block))
        try:
            report = occupancy_report(
                spec, grid, block,
                registers_per_thread=registers_per_thread,
                smem_bytes_per_block=smem_bytes_per_block,
            )
        except ValueError:
            continue  # this block size cannot launch at all
        if (
            best is None
            or report.achieved_occupancy > best[1].achieved_occupancy
            or (
                report.achieved_occupancy == best[1].achieved_occupancy
                and block > best[0]
            )
        ):
            best = (block, report)
    if best is None:
        raise ValueError(
            "no candidate block size can launch with these resources"
        )
    return best
