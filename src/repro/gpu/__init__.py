"""Simulated CUDA-like GPU substrate.

The paper's contribution is a set of CUDA kernels; this environment has
no GPU, so the package provides:

* :mod:`repro.gpu.memory` — a device memory manager with explicit
  allocation, capacity enforcement (a 6 GB GTX 1660 Ti really does run
  out of memory at ~8M points, as the paper reports), and peak tracking
  used by the Fig. 3f space experiment;
* :mod:`repro.gpu.emulator` — a faithful SIMT emulator (grids, blocks,
  threads, ``__syncthreads`` barriers, shared memory, atomics) used to
  validate the vectorized kernel implementations thread-for-thread on
  small inputs;
* :mod:`repro.gpu.occupancy` — a CUDA occupancy calculator reproducing
  the Nsight-style theoretical/achieved occupancy numbers of Sec. 5.4;
* :mod:`repro.gpu.device` — the device facade tying memory, kernel
  launches, and the roofline cost model together.
"""

from .device import Device
from .memory import DeviceArray, MemoryManager
from .emulator import SimtEmulator, ThreadContext
from .occupancy import OccupancyReport, best_block_size, occupancy_report
from .streams import StreamPlan, overlap_analysis
from .profiler import KernelProfile, format_kernel_profile, profile_kernels
from .checker import ScheduleCheckResult, check_schedule_independence
from .sanitizer import (
    Diagnostic,
    Sanitizer,
    SanitizerReport,
    TrackedArray,
    sanitize_launch,
)
from . import atomics

__all__ = [
    "Device",
    "DeviceArray",
    "MemoryManager",
    "SimtEmulator",
    "ThreadContext",
    "OccupancyReport",
    "occupancy_report",
    "best_block_size",
    "StreamPlan",
    "overlap_analysis",
    "KernelProfile",
    "profile_kernels",
    "format_kernel_profile",
    "ScheduleCheckResult",
    "check_schedule_independence",
    "Diagnostic",
    "Sanitizer",
    "SanitizerReport",
    "TrackedArray",
    "sanitize_launch",
    "atomics",
]
