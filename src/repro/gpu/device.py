"""Device facade: allocation, host/device transfer, and kernel launches.

A :class:`Device` ties together the memory manager (capacity + peak
tracking), the roofline cost model (modeled kernel times), and simple
PCIe transfer accounting.  The GPU algorithm variants perform all of
their computation "on the device": every kernel has a vectorized NumPy
implementation that records an equivalent
:class:`~repro.hardware.counters.KernelLaunch` here, and the cost model
turns those launches into modeled seconds.
"""

from __future__ import annotations

import numpy as np

from ..hardware.cost_model import GpuModel
from ..hardware.counters import KernelLaunch
from ..hardware.specs import GpuSpec, GTX_1660_TI
from ..obs.export import kernel_pipeline
from ..obs.tracer import Tracer, current_tracer
from .memory import DeviceArray, MemoryManager, ambient_injector

__all__ = ["Device"]

#: Sustained host<->device PCIe bandwidth (B/s); PROCLUS transfers the
#: dataset once and the labels back once, so this barely matters — the
#: paper explicitly keeps all computation on the GPU to avoid transfers.
_PCIE_BANDWIDTH = 12e9
#: Fixed latency of one host<->device copy.
_TRANSFER_LATENCY_S = 10e-6


class Device:
    """A simulated CUDA device with a calibrated performance model."""

    #: Whether this device consults the ambient fault injector.  The
    #: fleet's *logical* device replays the solo launch stream purely
    #: for accounting and must not double-fire faults already injected
    #: on the physical shard devices.
    fires_injector = True

    def __init__(
        self,
        spec: GpuSpec = GTX_1660_TI,
        model: GpuModel | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.spec = spec
        self.model = model if model is not None else GpuModel(spec)
        self.memory = MemoryManager(
            spec.usable_bytes, fires_injector=self.fires_injector
        )
        self.tracer = tracer if tracer is not None else current_tracer()
        #: Shift of this device's modeled clock on the shared trace
        #: timeline (non-zero when an earlier device already ran).
        self.clock_offset = (
            self.tracer.device_offset() if self.tracer.enabled else 0.0
        )

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def alloc(
        self,
        shape: int | tuple[int, ...],
        dtype: np.dtype | type = np.float32,
        name: str = "unnamed",
        fill: float | None = None,
    ) -> DeviceArray:
        """Allocate device global memory (raises when the card is full)."""
        return self.memory.alloc(shape, dtype=dtype, name=name, fill=fill)

    def _pipeline(self, name: str) -> str:
        """Trace pipeline (Perfetto track) for a kernel launched here.

        Fleet shard devices override this to place their launches on
        per-device tracks (``gpu0:compute_l``, ...).
        """
        return kernel_pipeline(name)

    def _transfer_pipeline(self) -> str:
        """Trace pipeline for host<->device copies on this device."""
        return "transfer"

    def to_device(self, host: np.ndarray, name: str, phase: str = "transfer") -> DeviceArray:
        """Copy a host array onto the device, accounting the transfer."""
        injector = ambient_injector() if self.fires_injector else None
        if injector is not None:
            injector.on_transfer("h2d", name, host.nbytes)
        array = self.memory.alloc(host.shape, dtype=host.dtype, name=name)
        array.data[...] = host
        seconds = _TRANSFER_LATENCY_S + host.nbytes / _PCIE_BANDWIDTH
        start = self.clock_offset + self.model.total_seconds
        self.model.account(
            "transfer", f"h2d:{name}", phase, seconds, residual="transfer"
        )
        self.model.counter.add("gpu.h2d_bytes", host.nbytes)
        if self.tracer.enabled:
            self.tracer.kernel(
                f"h2d:{name}", self._transfer_pipeline(), phase, start, seconds,
                clock="modeled",
            )
        return array

    def to_host(self, array: DeviceArray, phase: str = "transfer") -> np.ndarray:
        """Copy a device array back to the host, accounting the transfer."""
        injector = ambient_injector() if self.fires_injector else None
        if injector is not None:
            injector.on_transfer("d2h", array.name, array.nbytes)
        seconds = _TRANSFER_LATENCY_S + array.nbytes / _PCIE_BANDWIDTH
        start = self.clock_offset + self.model.total_seconds
        self.model.account(
            "transfer", f"d2h:{array.name}", phase, seconds, residual="transfer"
        )
        self.model.counter.add("gpu.d2h_bytes", array.nbytes)
        if self.tracer.enabled:
            self.tracer.kernel(
                f"d2h:{array.name}", self._transfer_pipeline(), phase, start,
                seconds, clock="modeled",
            )
        return array.copy_to_host()

    @property
    def peak_bytes(self) -> int:
        """Peak device memory footprint so far."""
        return self.memory.peak_bytes

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def launch(
        self,
        name: str,
        phase: str,
        grid_blocks: int,
        threads_per_block: int,
        flops: float = 0.0,
        gmem_bytes: float = 0.0,
        atomic_ops: float = 0.0,
        smem_bytes_per_block: int = 0,
        registers_per_thread: int = 32,
        ipc: float = 1.0,
    ) -> float:
        """Account one kernel launch; returns its modeled seconds."""
        injector = ambient_injector() if self.fires_injector else None
        if injector is not None:
            injector.on_launch(name, phase)
        launch = KernelLaunch(
            name=name,
            phase=phase,
            grid_blocks=int(grid_blocks),
            threads_per_block=int(threads_per_block),
            flops=float(flops),
            gmem_bytes=float(gmem_bytes),
            atomic_ops=float(atomic_ops),
            smem_bytes_per_block=int(smem_bytes_per_block),
            registers_per_thread=int(registers_per_thread),
            ipc=float(ipc),
        )
        start = self.clock_offset + self.model.total_seconds
        seconds = self.model.launch(launch)
        if self.tracer.enabled:
            self.tracer.kernel(
                name,
                self._pipeline(name),
                phase,
                start,
                seconds,
                clock="modeled",
                grid_blocks=int(grid_blocks),
                threads_per_block=int(threads_per_block),
            )
        return seconds

    @property
    def total_seconds(self) -> float:
        """Total modeled seconds accumulated on this device."""
        return self.model.total_seconds
