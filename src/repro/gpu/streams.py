"""CUDA-stream overlap modeling (the Section 5.4 what-if).

The paper notes that its small kernels (e.g. the ``k x k``
medoid-distance kernel with 3 % achieved occupancy) leave most of the
GPU idle, and that "if the preceding and the succeeding kernels were
not depending on each other, streams could be used to run two kernels
concurrently to engage more cores".  The paper does not implement this;
this module models it, so the ablation-minded can quantify how much the
unexploited overlap would buy.

Model: kernels assigned to different streams run concurrently when
their combined resident-warp demand fits the device; each kernel's
effective duration stretches by the factor by which concurrent demand
oversubscribes a resource (memory bandwidth is shared proportionally).
The schedule is greedy list scheduling in submission order, which is
what the CUDA runtime does per stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.cost_model import GpuModel
from ..hardware.counters import KernelLaunch
from ..hardware.specs import GpuSpec
from ..obs.tracer import current_tracer

__all__ = ["StreamPlan", "overlap_analysis"]


@dataclass(frozen=True, slots=True)
class StreamPlan:
    """Outcome of overlapping a kernel sequence across streams."""

    serial_seconds: float  #: one-stream (status quo) duration
    overlapped_seconds: float  #: modeled duration with streams
    concurrent_groups: int  #: independent groups that actually overlapped

    @property
    def saved_seconds(self) -> float:
        return self.serial_seconds - self.overlapped_seconds

    @property
    def speedup(self) -> float:
        if self.overlapped_seconds <= 0:
            return 1.0
        return self.serial_seconds / self.overlapped_seconds


def _resident_warp_demand(model: GpuModel, launch: KernelLaunch) -> int:
    """Resident warps a launch wants across the whole device."""
    spec = model.spec
    warps_per_block = -(-launch.threads_per_block // spec.warp_size)
    resident_blocks = min(
        launch.grid_blocks, model.resident_blocks_per_sm(launch) * spec.sm_count
    )
    return max(1, resident_blocks * warps_per_block)


def overlap_analysis(
    spec: GpuSpec, groups: list[list[KernelLaunch]]
) -> StreamPlan:
    """Model running each *group* of independent kernels concurrently.

    ``groups`` is a dependency-ordered list: kernels inside one group
    are mutually independent (candidates for separate streams); groups
    run one after another.  Returns the serial vs overlapped durations.
    """
    obs = current_tracer()
    with obs.span(
        "overlap_analysis", category="analysis", groups=len(groups)
    ) as span:
        model = GpuModel(spec)
        device_warps = spec.sm_count * (spec.max_threads_per_sm // spec.warp_size)

        serial = 0.0
        overlapped = 0.0
        concurrent_groups = 0
        for group in groups:
            if not group:
                continue
            times = [model.launch_time(launch) for launch in group]
            serial += sum(times)
            if len(group) == 1:
                overlapped += times[0]
                continue
            demand = sum(_resident_warp_demand(model, launch) for launch in group)
            # Oversubscription stretches everything proportionally; under
            # subscription means the kernels genuinely run side by side and
            # the group costs as much as its slowest member (plus a single
            # launch overhead already inside each time).
            stretch = max(1.0, demand / device_warps)
            group_time = max(times) * stretch
            # Overlap can never beat running just the longest kernel, nor be
            # worse than full serialization.
            group_time = min(max(group_time, max(times)), sum(times))
            overlapped += group_time
            if group_time < sum(times):
                concurrent_groups += 1
        span.set(
            serial_seconds=serial,
            overlapped_seconds=overlapped,
            concurrent_groups=concurrent_groups,
        )
        return StreamPlan(
            serial_seconds=serial,
            overlapped_seconds=overlapped,
            concurrent_groups=concurrent_groups,
        )
