"""Kernel sanitizer: a cuda-memcheck / racecheck analog for the emulator.

The schedule-independence checker (:mod:`repro.gpu.checker`) can only
see races that change a kernel's *output*; a race whose interleavings
happen to produce identical results — or that corrupts scratch state
the launch never reads back — passes it silently.  This module instead
instruments the emulator's memory system: every element access a kernel
performs is logged with its thread, block, barrier epoch, and whether
it went through :mod:`repro.gpu.atomics`, and each launch is analyzed
for four diagnostic classes:

``out-of-bounds``
    An index outside the array, including *negative* indices (NumPy
    wraps them silently; CUDA reads unowned memory).  Fatal: recorded
    in the report and raised as :class:`~repro.exceptions.SanitizerError`.
``uninitialized-shared-read``
    A read of a shared-memory cell no thread has written (allocation
    without ``fill=``) — ``__shared__`` garbage on real hardware.
``race-write-write`` / ``race-read-write``
    Two plain accesses to the same element, at least one a write, by
    different threads with no barrier between them.  Within a block,
    accesses in different ``__syncthreads`` epochs are ordered
    (happens-before over the generator ``yield`` rounds); across
    blocks nothing orders accesses within one launch.
``atomic-plain-conflict``
    An atomic operation and a plain access touching the same element
    concurrently (at least one of the pair writing) — atomicity only
    protects atomics against *each other*.

The sanitizer is dynamic, like cuda-memcheck: it judges the accesses a
run actually performs.  Whole-array reads through NumPy ufuncs are
logged coarsely (the full array); accesses through views obtained from
a sub-array expression are not tracked — kernels in this repository
index elements and rows explicitly, which is fully covered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..exceptions import SanitizerError
from . import atomics

__all__ = [
    "OUT_OF_BOUNDS",
    "UNINITIALIZED_SHARED_READ",
    "RACE_WRITE_WRITE",
    "RACE_READ_WRITE",
    "ATOMIC_PLAIN_CONFLICT",
    "DIAGNOSTIC_KINDS",
    "Diagnostic",
    "SanitizerReport",
    "Sanitizer",
    "TrackedArray",
    "sanitize_launch",
]

OUT_OF_BOUNDS = "out-of-bounds"
UNINITIALIZED_SHARED_READ = "uninitialized-shared-read"
RACE_WRITE_WRITE = "race-write-write"
RACE_READ_WRITE = "race-read-write"
ATOMIC_PLAIN_CONFLICT = "atomic-plain-conflict"

DIAGNOSTIC_KINDS = (
    OUT_OF_BOUNDS,
    UNINITIALIZED_SHARED_READ,
    RACE_WRITE_WRITE,
    RACE_READ_WRITE,
    ATOMIC_PLAIN_CONFLICT,
)

#: Race classes (any unsynchronized same-element conflict).
RACE_KINDS = (RACE_WRITE_WRITE, RACE_READ_WRITE, ATOMIC_PLAIN_CONFLICT)

# Analysis caps: one diagnostic per element per launch, bounded pair
# scans so a hot atomic counter cannot make the analysis quadratic.
_MAX_WRITES_SCANNED = 64
_MAX_ACCESSES_SCANNED = 512


@dataclass(slots=True)
class Diagnostic:
    """One sanitizer finding."""

    kind: str  #: one of :data:`DIAGNOSTIC_KINDS`
    kernel: str  #: name of the launched kernel function
    launch: int  #: 1-based launch number within the sanitizer's lifetime
    array: str  #: label of the offending array (argument or shared name)
    location: tuple[int, ...] | None  #: element index, unraveled
    detail: str  #: human-readable specifics (threads, epochs, index)

    @property
    def message(self) -> str:
        where = "" if self.location is None else f"[{', '.join(map(str, self.location))}]"
        return (
            f"[{self.kind}] launch #{self.launch} {self.kernel}: "
            f"{self.array}{where} — {self.detail}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "kernel": self.kernel,
            "launch": self.launch,
            "array": self.array,
            "location": list(self.location) if self.location is not None else None,
            "detail": self.detail,
        }


@dataclass
class SanitizerReport:
    """Accumulated findings over every sanitized launch."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    launches: int = 0
    accesses: int = 0

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    @property
    def kinds(self) -> set[str]:
        return {d.kind for d in self.diagnostics}

    def by_kind(self, kind: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.kind == kind]

    def render(self) -> str:
        lines = [
            f"sanitizer: {self.launches} launches, {self.accesses} accesses "
            f"logged, {len(self.diagnostics)} diagnostics"
        ]
        for diag in self.diagnostics:
            lines.append("  " + diag.message)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "launches": self.launches,
            "accesses": self.accesses,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


class _ArrayInfo:
    """Sanitizer-side record of one tracked array."""

    __slots__ = (
        "base", "label", "space", "shape", "size", "strides", "init_mask",
    )

    def __init__(
        self,
        base: np.ndarray,
        label: str,
        space: str,
        uninitialized: bool,
    ) -> None:
        self.base = base
        self.label = label
        self.space = space  # "global" | "shared"
        self.shape = base.shape
        self.size = base.size
        # Row-major element strides, for the scalar-index fast path.
        strides = []
        acc = 1
        for dim in reversed(base.shape):
            strides.append(acc)
            acc *= dim
        self.strides = tuple(reversed(strides))
        self.init_mask = (
            np.zeros(base.shape, dtype=bool) if uninitialized else None
        )


class TrackedArray(np.ndarray):
    """ndarray view that reports element accesses to a :class:`Sanitizer`.

    Created via :meth:`Sanitizer.track`; behaves exactly like the base
    array otherwise.  Sub-array results (row views, ufunc outputs) are
    returned untracked, so thread-local temporaries stay cheap.
    """

    def __array_finalize__(self, obj: Any) -> None:
        # Views/copies derived from a tracked array are NOT tracked;
        # only Sanitizer.track attaches a live sanitizer reference.
        self._san = None
        self._info = None

    def __getitem__(self, idx: Any) -> Any:
        san = self._san
        if san is not None and san.in_kernel:
            san.on_access(self._info, idx, is_write=False)
        return np.ndarray.__getitem__(self, idx)

    def __setitem__(self, idx: Any, value: Any) -> None:
        san = self._san
        if san is not None and san.in_kernel:
            san.on_access(self._info, idx, is_write=True)
        np.ndarray.__setitem__(self, idx, value)

    def __array_ufunc__(self, ufunc, method, *inputs, out=None, **kwargs):
        # Whole-array arithmetic (e.g. ``np.all(tile == 1)``) bypasses
        # __getitem__; log it coarsely as a read/write of every element.
        for operand in inputs:
            if isinstance(operand, TrackedArray) and operand._san is not None:
                if operand._san.in_kernel:
                    operand._san.on_access(operand._info, slice(None), False)
        plain_inputs = tuple(
            operand.view(np.ndarray) if isinstance(operand, TrackedArray) else operand
            for operand in inputs
        )
        if out is not None:
            for operand in out:
                if isinstance(operand, TrackedArray) and operand._san is not None:
                    if operand._san.in_kernel:
                        operand._san.on_access(operand._info, slice(None), True)
            kwargs["out"] = tuple(
                operand.view(np.ndarray) if isinstance(operand, TrackedArray) else operand
                for operand in out
            )
        return getattr(ufunc, method)(*plain_inputs, **kwargs)


class Sanitizer:
    """Instruments emulator launches and accumulates a report.

    One instance can observe many launches (pass it to
    :class:`~repro.gpu.emulator.SimtEmulator` or per-launch via
    ``launch(..., sanitize=...)``); findings accumulate in
    :attr:`report`.
    """

    def __init__(self) -> None:
        self.report = SanitizerReport()
        self._infos: dict[int, _ArrayInfo] = {}
        self._log: dict[tuple[_ArrayInfo, int], list[tuple]] = {}
        self._uninit_reported: set[tuple[int, int]] = set()
        self._current: tuple | None = None  # (block, thread, epoch)
        self._launch_active = False
        self._kernel = ""

    # -- lifecycle driven by the emulator --------------------------------

    @property
    def in_kernel(self) -> bool:
        return self._launch_active and self._current is not None

    def begin_launch(self, kernel_name: str) -> None:
        self._launch_active = True
        self._kernel = kernel_name
        self._log = {}
        self._uninit_reported = set()
        self.report.launches += 1

    def end_launch(self) -> None:
        """Analyze the launch's access log for unsynchronized conflicts."""
        try:
            for (info, loc), accesses in self._log.items():
                self._analyze_location(info, loc, accesses)
        finally:
            self._log = {}
            self._current = None
            self._launch_active = False
            # Shared memory dies with the launch; drop those records so
            # a recycled buffer address cannot alias a stale registration.
            self._infos = {
                key: info
                for key, info in self._infos.items()
                if info.space != "shared"
            }

    def set_thread(
        self, block: tuple[int, ...], thread: tuple[int, ...], epoch: int
    ) -> None:
        self._current = (block, thread, epoch)

    def clear_thread(self) -> None:
        self._current = None

    # -- array registration -----------------------------------------------

    def track(
        self,
        array: np.ndarray,
        label: str,
        space: str = "global",
        uninitialized: bool = False,
    ) -> TrackedArray:
        """Return an instrumented view of ``array``.

        Re-tracking the same array reuses its registration, so epochs of
        a multi-launch pipeline all attribute accesses to one record.
        """
        if isinstance(array, TrackedArray) and array._san is self:
            return array
        base = array.view(np.ndarray)
        key = base.__array_interface__["data"][0]
        info = self._infos.get(key)
        if info is None or info.shape != base.shape:
            info = _ArrayInfo(base, label, space, uninitialized)
            self._infos[key] = info
        tracked = base.view(TrackedArray)
        tracked._san = self
        tracked._info = info
        return tracked

    # -- access recording --------------------------------------------------

    def on_access(self, info: _ArrayInfo, idx: Any, is_write: bool) -> None:
        """Record one element access by the current thread."""
        covered = self._covered_locations(info, idx)
        block, thread, epoch = self._current
        atomic = atomics.in_atomic()
        self.report.accesses += len(covered)
        if info.init_mask is not None:
            self._check_initialization(info, covered, is_write)
        record = (block, thread, epoch, is_write, atomic)
        log = self._log
        for loc in covered:
            log.setdefault((info, int(loc)), []).append(record)

    def _covered_locations(self, info: _ArrayInfo, idx: Any) -> Any:
        """Flat element indices selected by ``idx`` (validating bounds)."""
        shape = info.shape
        # Fast path: a scalar index or a tuple of scalar indices.
        if isinstance(idx, (int, np.integer)):
            idx = (int(idx),)
        if isinstance(idx, tuple) and len(idx) <= len(shape) and all(
            isinstance(component, (int, np.integer)) for component in idx
        ):
            flat = 0
            for axis, component in enumerate(idx):
                component = int(component)
                if component < 0 or component >= shape[axis]:
                    self._oob(info, idx)
                flat += component * info.strides[axis]
            if len(idx) < len(shape):
                # Partial index selects a whole trailing block of rows.
                span = 1
                for dim in shape[len(idx):]:
                    span *= dim
                return range(flat, flat + span)
            return (flat,)
        # General path: let NumPy resolve the selection over an index
        # map, after rejecting the negative indices it would wrap.
        self._check_negative(info, idx)
        index_map = np.arange(info.size).reshape(shape)
        try:
            covered = index_map[idx]
        except IndexError:
            self._oob(info, idx)
        return np.atleast_1d(np.asarray(covered)).ravel()

    def _check_negative(self, info: _ArrayInfo, idx: Any) -> None:
        components = idx if isinstance(idx, tuple) else (idx,)
        axis = 0
        for component in components:
            if component is Ellipsis:
                return  # conservative: fall through to NumPy's checks
            if isinstance(component, (int, np.integer)):
                if int(component) < 0:
                    self._oob(info, idx)
                axis += 1
            elif isinstance(component, np.ndarray) and component.dtype != bool:
                if component.size and int(component.min()) < 0:
                    self._oob(info, idx)
                axis += 1
            else:
                axis += 1

    def _oob(self, info: _ArrayInfo, idx: Any) -> None:
        diag = Diagnostic(
            kind=OUT_OF_BOUNDS,
            kernel=self._kernel,
            launch=self.report.launches,
            array=info.label,
            location=None,
            detail=(
                f"index {idx!r} outside shape {tuple(info.shape)} "
                f"by thread {self._thread_name()}"
            ),
        )
        self.report.diagnostics.append(diag)
        raise SanitizerError(diag.message, diagnostic=diag)

    def _check_initialization(self, info, covered, is_write: bool) -> None:
        mask = info.init_mask.reshape(-1)
        if is_write:
            for loc in covered:
                mask[loc] = True
            return
        for loc in covered:
            if not mask[loc]:
                key = (id(info.base), int(loc))
                if key in self._uninit_reported:
                    continue
                self._uninit_reported.add(key)
                self.report.diagnostics.append(
                    Diagnostic(
                        kind=UNINITIALIZED_SHARED_READ,
                        kernel=self._kernel,
                        launch=self.report.launches,
                        array=info.label,
                        location=tuple(
                            int(x) for x in np.unravel_index(loc, info.shape)
                        ),
                        detail=(
                            f"read of never-written shared memory by "
                            f"thread {self._thread_name()}"
                        ),
                    )
                )

    def _thread_name(self) -> str:
        if self._current is None:
            return "<host>"
        block, thread, epoch = self._current
        return f"block{block}/thread{thread}@epoch{epoch}"

    # -- race analysis -----------------------------------------------------

    def _analyze_location(
        self, info: _ArrayInfo, loc: int, accesses: list[tuple]
    ) -> None:
        if len(accesses) < 2:
            return
        # (block, thread, epoch, is_write, atomic)
        writes = [a for a in accesses if a[3]]
        if not writes:
            return
        if all(a[4] for a in accesses):
            return  # atomics never conflict with each other
        shared = info.space == "shared"
        scanned = accesses[:_MAX_ACCESSES_SCANNED]
        for write in writes[:_MAX_WRITES_SCANNED]:
            for other in scanned:
                if other is write:
                    continue
                if (write[0], write[1]) == (other[0], other[1]):
                    continue  # same thread: program order
                if write[4] and other[4]:
                    continue  # both atomic
                if shared or write[0] == other[0]:
                    # Same block: ordered iff separated by a barrier.
                    if write[2] != other[2]:
                        continue
                # Different blocks: nothing orders them within a launch.
                self._emit_race(info, loc, write, other)
                return

    def _emit_race(self, info: _ArrayInfo, loc: int, a: tuple, b: tuple) -> None:
        if a[4] != b[4]:
            kind = ATOMIC_PLAIN_CONFLICT
        elif a[3] and b[3]:
            kind = RACE_WRITE_WRITE
        else:
            kind = RACE_READ_WRITE

        def name(access: tuple) -> str:
            op = "atomic" if access[4] else ("write" if access[3] else "read")
            return f"{op} by block{access[0]}/thread{access[1]}@epoch{access[2]}"

        self.report.diagnostics.append(
            Diagnostic(
                kind=kind,
                kernel=self._kernel,
                launch=self.report.launches,
                array=info.label,
                location=tuple(int(x) for x in np.unravel_index(loc, info.shape)),
                detail=f"{name(a)} conflicts with {name(b)} (no barrier between)",
            )
        )


def sanitize_launch(
    kernel: Any,
    grid_dim: Any,
    block_dim: Any,
    *args: Any,
    schedule_seed: int | None = None,
    sanitizer: Sanitizer | None = None,
) -> SanitizerReport:
    """Run one launch under the sanitizer and return the report.

    A fatal :class:`~repro.exceptions.SanitizerError` (out-of-bounds)
    aborts the launch but is captured in the returned report.
    """
    from .emulator import SimtEmulator

    san = sanitizer if sanitizer is not None else Sanitizer()
    emulator = SimtEmulator(schedule_seed=schedule_seed, sanitizer=san)
    try:
        emulator.launch(kernel, grid_dim, block_dim, *args)
    except SanitizerError:
        pass
    return san.report
