"""Schedule-independence checker for emulated kernels.

On real hardware, a kernel whose result depends on warp scheduling is a
race bug.  The emulator can execute the same launch under different
deterministic thread orders; this checker runs a kernel several times
with shuffled schedules and reports whether any output buffer differed
— a cheap ThreadSanitizer for the kernels in this repository (and for
user-written ones).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from .emulator import SimtEmulator

__all__ = ["ScheduleCheckResult", "check_schedule_independence"]


@dataclass(slots=True)
class ScheduleCheckResult:
    """Outcome of a schedule-independence check."""

    schedules_tried: int
    #: Indices (into the launch's argument list) of arrays whose final
    #: contents differed between schedules; empty = independent.
    divergent_arguments: list[int]
    #: Maximum absolute elementwise difference seen per divergent array.
    max_differences: dict[int, float]

    @property
    def independent(self) -> bool:
        return not self.divergent_arguments


def _snapshot(args: tuple[Any, ...]) -> list[np.ndarray | None]:
    return [a.copy() if isinstance(a, np.ndarray) else None for a in args]


def check_schedule_independence(
    kernel: Callable[..., Any],
    grid_dim,
    block_dim,
    *args: Any,
    schedules: int = 4,
    exact: bool = True,
    tolerance: float = 0.0,
) -> ScheduleCheckResult:
    """Run ``kernel`` under several schedules and diff its outputs.

    Array arguments are treated as in/out buffers: each trial starts
    from a pristine copy of the initial contents, and final contents are
    compared across trials.  With ``exact=False``, differences up to
    ``tolerance`` are allowed (for kernels whose floating-point
    accumulation is legitimately order-sensitive in the last bits).
    """
    if schedules < 2:
        raise ValueError(f"need >= 2 schedules to compare, got {schedules}")
    initial = _snapshot(args)

    def run(seed: int | None) -> list[np.ndarray | None]:
        trial_args = tuple(
            initial[i].copy() if initial[i] is not None else args[i]
            for i in range(len(args))
        )
        SimtEmulator(schedule_seed=seed).launch(
            kernel, grid_dim, block_dim, *trial_args
        )
        return _snapshot(trial_args)

    reference = run(None)
    divergent: list[int] = []
    max_diff: dict[int, float] = {}
    for seed in range(1, schedules):
        outcome = run(seed)
        for i, (ref, got) in enumerate(zip(reference, outcome)):
            if ref is None:
                continue
            if exact:
                same = np.array_equal(ref, got)
            else:
                same = np.allclose(ref, got, atol=tolerance, rtol=0.0)
            if not same:
                if i not in divergent:
                    divergent.append(i)
                if np.issubdtype(ref.dtype, np.number):
                    diff = float(
                        np.max(np.abs(ref.astype(np.float64) - got.astype(np.float64)))
                    )
                else:
                    diff = float(np.count_nonzero(ref != got))
                max_diff[i] = max(max_diff.get(i, 0.0), diff)
    return ScheduleCheckResult(
        schedules_tried=schedules,
        divergent_arguments=sorted(divergent),
        max_differences=max_diff,
    )
