"""Schedule-independence checker for emulated kernels.

On real hardware, a kernel whose result depends on warp scheduling is a
race bug.  The emulator can execute the same launch under different
deterministic thread orders; this checker runs a kernel several times
with shuffled schedules and reports whether any output buffer — or any
block's final *shared memory* contents, scratch state a pure output
diff would miss — differed.  Combined with ``sanitize=True`` (which
runs every trial under the access-level race detector in
:mod:`repro.gpu.sanitizer`) this is a cheap ThreadSanitizer for the
kernels in this repository and for user-written ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from . import atomics
from .emulator import SimtEmulator, _as_tuple
from .sanitizer import Sanitizer, SanitizerReport

__all__ = ["ScheduleCheckResult", "check_schedule_independence"]

#: Blocks this small have so few distinct thread permutations that a
#: handful of shuffles can coincide; the checker grows the trial count.
_TINY_BLOCK_THREADS = 4
_TINY_BLOCK_SCHEDULES = 8


@dataclass(slots=True)
class ScheduleCheckResult:
    """Outcome of a schedule-independence check."""

    schedules_tried: int
    #: Indices (into the launch's argument list) of arrays whose final
    #: contents differed between schedules; empty = independent.
    divergent_arguments: list[int]
    #: Maximum absolute elementwise difference seen per divergent array.
    max_differences: dict[int, float]
    #: ``"block{idx}/{name}"`` keys of shared arrays whose final
    #: contents differed between schedules.
    divergent_shared: list[str] = field(default_factory=list)
    #: Access-level findings, present when ``sanitize=True`` was passed.
    sanitizer_report: SanitizerReport | None = None

    @property
    def independent(self) -> bool:
        return not self.divergent_arguments and not self.divergent_shared


def _snapshot(args: tuple[Any, ...]) -> list[np.ndarray | None]:
    return [a.copy() if isinstance(a, np.ndarray) else None for a in args]


def _shared_snapshot(emulator: SimtEmulator) -> dict[str, np.ndarray]:
    """Final shared-memory contents of the last launch, keyed per block."""
    snapshot: dict[str, np.ndarray] = {}
    for block_idx, shared in emulator.last_shared.items():
        for name, array in shared.items():
            snapshot[f"block{block_idx}/{name}"] = np.asarray(array).copy()
    return snapshot


def check_schedule_independence(
    kernel: Callable[..., Any],
    grid_dim,
    block_dim,
    *args: Any,
    schedules: int = 4,
    exact: bool = True,
    tolerance: float = 0.0,
    sanitize: bool = False,
) -> ScheduleCheckResult:
    """Run ``kernel`` under several schedules and diff its outputs.

    Array arguments are treated as in/out buffers: each trial starts
    from a pristine copy of the initial contents, and final contents are
    compared across trials — as are each block's final shared-memory
    arrays, so a race confined to scratch state is still caught.  With
    ``exact=False``, differences up to ``tolerance`` are allowed (for
    kernels whose floating-point accumulation is legitimately
    order-sensitive in the last bits; the same policy applies to shared
    arrays).

    Trials run with the atomics module state isolated, so replaying the
    kernel ``schedules`` times does not inflate an enclosing
    :func:`~repro.gpu.atomics.count_atomics` tally.  When the block has
    :data:`_TINY_BLOCK_THREADS` threads or fewer, the trial count is
    raised to at least :data:`_TINY_BLOCK_SCHEDULES` — tiny blocks have
    so few distinct permutations that the default four shuffles can
    coincide and mask a race.

    With ``sanitize=True`` every trial also runs under the
    access-logging sanitizer; findings are merged into
    ``result.sanitizer_report``.  A fatal sanitizer error (out of
    bounds) propagates as :class:`~repro.exceptions.SanitizerError`.
    """
    if schedules < 2:
        raise ValueError(f"need >= 2 schedules to compare, got {schedules}")
    block_threads = int(np.prod(_as_tuple(block_dim)))
    if block_threads <= _TINY_BLOCK_THREADS:
        schedules = max(schedules, _TINY_BLOCK_SCHEDULES)
    initial = _snapshot(args)
    sanitizer = Sanitizer() if sanitize else None

    def run(seed: int | None) -> tuple[list[np.ndarray | None], dict[str, np.ndarray]]:
        trial_args = tuple(
            initial[i].copy() if initial[i] is not None else args[i]
            for i in range(len(args))
        )
        with atomics.isolated_state():
            emulator = SimtEmulator(schedule_seed=seed, sanitizer=sanitizer)
            emulator.launch(kernel, grid_dim, block_dim, *trial_args)
            shared = _shared_snapshot(emulator)
        return _snapshot(trial_args), shared

    def same(ref: np.ndarray, got: np.ndarray) -> bool:
        if exact:
            return np.array_equal(ref, got)
        return np.allclose(ref, got, atol=tolerance, rtol=0.0)

    def difference(ref: np.ndarray, got: np.ndarray) -> float:
        if np.issubdtype(ref.dtype, np.number):
            return float(
                np.max(np.abs(ref.astype(np.float64) - got.astype(np.float64)))
            )
        return float(np.count_nonzero(ref != got))

    reference, shared_reference = run(None)
    divergent: list[int] = []
    max_diff: dict[int, float] = {}
    divergent_shared: list[str] = []
    for seed in range(1, schedules):
        outcome, shared_outcome = run(seed)
        for i, (ref, got) in enumerate(zip(reference, outcome)):
            if ref is None:
                continue
            if not same(ref, got):
                if i not in divergent:
                    divergent.append(i)
                max_diff[i] = max(max_diff.get(i, 0.0), difference(ref, got))
        for key in shared_reference.keys() | shared_outcome.keys():
            if key in divergent_shared:
                continue
            ref = shared_reference.get(key)
            got = shared_outcome.get(key)
            if ref is None or got is None or not same(ref, got):
                divergent_shared.append(key)
    return ScheduleCheckResult(
        schedules_tried=schedules,
        divergent_arguments=sorted(divergent),
        max_differences=max_diff,
        divergent_shared=sorted(divergent_shared),
        sanitizer_report=sanitizer.report if sanitizer is not None else None,
    )
