"""Atomic operations with CUDA semantics, for emulated kernels.

All functions operate on an element of a NumPy array and return the
*old* value, exactly like CUDA's ``atomicAdd``/``atomicMin``/... .
Inside the cooperative SIMT emulator each Python-level operation is
indivisible, so these functions are trivially atomic; their purpose is
to make kernel code read like the CUDA it models and to let the
emulator count atomic traffic.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator

import numpy as np

__all__ = [
    "atomic_add",
    "atomic_min",
    "atomic_max",
    "atomic_inc",
    "atomic_cas",
    "count_atomics",
    "in_atomic",
    "isolated_state",
]

Index = Any  # int or tuple of ints

#: Incremented by every atomic operation while a count_atomics() context
#: is active (None otherwise, keeping the hot path branch-cheap).
_counter: list[int] | None = None

#: Nonzero while an atomic operation's read-modify-write is executing.
#: The kernel sanitizer reads this to tell atomic element accesses from
#: plain ones (an atomic racing a plain write is still a race).
_atomic_depth: int = 0


def in_atomic() -> bool:
    """True while an atomic operation is accessing its array element."""
    return _atomic_depth > 0


@contextlib.contextmanager
def isolated_state() -> Iterator[None]:
    """Run with pristine module state, restoring the caller's afterwards.

    Used by replay tools (e.g. the schedule-independence checker) so
    their repeated trial launches neither inflate an enclosing
    :func:`count_atomics` tally nor inherit a stale atomic depth from an
    aborted launch.
    """
    global _counter, _atomic_depth
    saved = (_counter, _atomic_depth)
    _counter = None
    _atomic_depth = 0
    try:
        yield
    finally:
        _counter, _atomic_depth = saved


@contextlib.contextmanager
def count_atomics() -> Iterator[list[int]]:
    """Count atomic operations performed inside the context.

    Yields a single-element list whose value after the context holds the
    number of atomics executed — used to cross-validate the cost model's
    accounted atomic traffic against the emulator's actual behaviour.
    """
    global _counter
    previous = _counter
    _counter = [0]
    try:
        yield _counter
    finally:
        current = _counter
        _counter = previous
        if previous is not None:
            previous[0] += current[0]


def _tick() -> None:
    if _counter is not None:
        _counter[0] += 1


def atomic_add(array: np.ndarray, index: Index, value: float) -> float:
    """``old = array[index]; array[index] += value; return old``."""
    global _atomic_depth
    _tick()
    _atomic_depth += 1
    try:
        old = array[index]
        array[index] = old + value
    finally:
        _atomic_depth -= 1
    return old


def atomic_min(array: np.ndarray, index: Index, value: float) -> float:
    """``old = array[index]; array[index] = min(old, value); return old``."""
    global _atomic_depth
    _tick()
    _atomic_depth += 1
    try:
        old = array[index]
        if value < old:
            array[index] = value
    finally:
        _atomic_depth -= 1
    return old


def atomic_max(array: np.ndarray, index: Index, value: float) -> float:
    """``old = array[index]; array[index] = max(old, value); return old``."""
    global _atomic_depth
    _tick()
    _atomic_depth += 1
    try:
        old = array[index]
        if value > old:
            array[index] = value
    finally:
        _atomic_depth -= 1
    return old


def atomic_inc(array: np.ndarray, index: Index) -> int:
    """Increment a counter and return the *old* value.

    This is how GPU-PROCLUS appends points to the ``L_i`` and ``C_i``
    arrays: the returned old value is the append position.
    """
    global _atomic_depth
    _tick()
    _atomic_depth += 1
    try:
        old = int(array[index])
        array[index] = old + 1
    finally:
        _atomic_depth -= 1
    return old


def atomic_cas(array: np.ndarray, index: Index, compare: float, value: float) -> float:
    """Compare-and-swap; returns the old value."""
    global _atomic_depth
    _tick()
    _atomic_depth += 1
    try:
        old = array[index]
        if old == compare:
            array[index] = value
    finally:
        _atomic_depth -= 1
    return old
