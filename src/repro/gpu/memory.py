"""Simulated device (global) memory with capacity and peak tracking.

GPU-PROCLUS allocates all required memory once up front and reuses it
across iterations (Section 4.1).  The memory manager enforces the
modeled card's capacity — the paper reports that at 8,000,000 points
space becomes the limiting factor on the 6 GB GTX 1660 Ti — and tracks
the peak footprint, which the Fig. 3f experiment compares across
algorithm variants.
"""

from __future__ import annotations

import threading
from typing import Iterator

import numpy as np

from ..exceptions import DeviceError, DeviceOutOfMemoryError, ParameterError

__all__ = ["DeviceArray", "MemoryManager", "MemoryBudget"]


def ambient_injector():
    """Resolve the ambient fault injector (None when none is installed).

    Imported lazily: :mod:`repro.resilience` imports the engine stack
    (which imports this module), so a module-level import would be
    circular.  By the time any device operation runs the import below
    is a cached ``sys.modules`` hit, and the common no-injector path is
    a single ``ContextVar`` read.
    """
    from ..resilience.faults import current_injector

    return current_injector()


class DeviceArray:
    """A named array living in simulated device global memory.

    The backing store is a NumPy array; ``DeviceArray`` exists to make
    allocation explicit (so footprints are accountable) and to prevent
    use-after-free in kernel code.
    """

    def __init__(self, manager: "MemoryManager", name: str, data: np.ndarray) -> None:
        self._manager = manager
        self.name = name
        self._data: np.ndarray | None = data

    @property
    def data(self) -> np.ndarray:
        """The backing NumPy array (raises if the array was freed)."""
        if self._data is None:
            raise DeviceError(f"use after free of device array {self.name!r}")
        return self._data

    @property
    def freed(self) -> bool:
        return self._data is None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def fill(self, value: float) -> None:
        """Fill the array with a constant (device-side memset)."""
        self.data.fill(value)

    def copy_to_host(self) -> np.ndarray:
        """Return a host copy of the array contents."""
        return self.data.copy()

    def tracked(self, sanitizer) -> np.ndarray:
        """Sanitizer-instrumented view of the backing store.

        Pass the returned array (instead of ``.data``) into an emulated
        kernel launch to have the kernel sanitizer attribute accesses —
        and out-of-bounds diagnostics — to this allocation by name.
        """
        return sanitizer.track(self.data, label=self.name)

    def free(self) -> None:
        """Release the allocation back to the device."""
        if self._data is not None:
            self._manager._release(self)
            self._data = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._data is None:
            return f"DeviceArray({self.name!r}, freed)"
        return f"DeviceArray({self.name!r}, shape={self.shape}, dtype={self.dtype})"


class MemoryManager:
    """Tracks allocations against a fixed device capacity."""

    def __init__(self, capacity_bytes: int, fires_injector: bool = True) -> None:
        if capacity_bytes <= 0:
            raise ParameterError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self.allocated_bytes = 0
        self.peak_bytes = 0
        #: Whether allocations consult the ambient fault injector (the
        #: fleet's accounting-only logical device opts out).
        self.fires_injector = fires_injector
        self._live: dict[int, DeviceArray] = {}

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.allocated_bytes

    def alloc(
        self,
        shape: int | tuple[int, ...],
        dtype: np.dtype | type = np.float32,
        name: str = "unnamed",
        fill: float | None = None,
    ) -> DeviceArray:
        """Allocate a device array, raising when the card is full."""
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        injector = ambient_injector() if self.fires_injector else None
        if injector is not None:
            injector.on_alloc(name, nbytes, self.free_bytes, self.capacity_bytes)
        if nbytes > self.free_bytes:
            raise DeviceOutOfMemoryError(nbytes, self.free_bytes, self.capacity_bytes)
        if fill is None:
            data = np.empty(shape, dtype=dtype)
        else:
            data = np.full(shape, fill, dtype=dtype)
        array = DeviceArray(self, name, data)
        self.allocated_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
        self._live[id(array)] = array
        return array

    def _release(self, array: DeviceArray) -> None:
        live = self._live.pop(id(array), None)
        if live is None:
            raise DeviceError(f"double free of device array {array.name!r}")
        self.allocated_bytes -= array.nbytes

    def live_arrays(self) -> Iterator[DeviceArray]:
        """Iterate over currently live allocations."""
        return iter(list(self._live.values()))

    def free_all(self) -> None:
        """Release every live allocation (device reset)."""
        for array in self.live_arrays():
            array.free()

    def footprint_by_name(self) -> dict[str, int]:
        """Bytes currently allocated, grouped by allocation name."""
        sizes: dict[str, int] = {}
        for array in self._live.values():
            sizes[array.name] = sizes.get(array.name, 0) + array.nbytes
        return sizes


class MemoryBudget:
    """Thread-safe reservation ledger against a modeled device capacity.

    Where :class:`MemoryManager` tracks the *actual* allocations of one
    engine run, ``MemoryBudget`` tracks *planned* footprints across
    concurrent runs: the serving layer reserves each job's estimated
    device bytes before it starts and releases them when it finishes,
    so the sum of concurrently running jobs never exceeds the modeled
    card's capacity (:attr:`~repro.hardware.specs.GpuSpec.usable_bytes`).

    :meth:`reserve` blocks until the reservation fits (or the timeout
    expires); a request larger than the whole capacity is permanently
    infeasible and raises :class:`~repro.exceptions.DeviceOutOfMemoryError`
    immediately.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if not isinstance(capacity_bytes, (int, np.integer)) or isinstance(
            capacity_bytes, bool
        ):
            raise ParameterError(
                f"capacity must be an int, got {type(capacity_bytes).__name__}"
            )
        if capacity_bytes <= 0:
            raise ParameterError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self.reserved_bytes = 0
        self.peak_reserved_bytes = 0
        self.waits = 0  #: reservations that had to block for space
        self._cond = threading.Condition()

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.reserved_bytes

    def fits(self, nbytes: int) -> bool:
        """Whether ``nbytes`` could ever be reserved (ignores current load)."""
        return int(nbytes) <= self.capacity_bytes

    def reserve(self, nbytes: int, timeout: float | None = None) -> None:
        """Reserve ``nbytes``, blocking while the device is full.

        Raises
        ------
        DeviceOutOfMemoryError
            When ``nbytes`` exceeds the total capacity (never fits), or
            when ``timeout`` seconds pass without space freeing up.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ParameterError(f"cannot reserve {nbytes} bytes")
        if nbytes > self.capacity_bytes:
            raise DeviceOutOfMemoryError(
                nbytes, self.free_bytes, self.capacity_bytes
            )
        with self._cond:
            if nbytes > self.capacity_bytes - self.reserved_bytes:
                self.waits += 1
                satisfied = self._cond.wait_for(
                    lambda: nbytes <= self.capacity_bytes - self.reserved_bytes,
                    timeout=timeout,
                )
                if not satisfied:
                    raise DeviceOutOfMemoryError(
                        nbytes, self.capacity_bytes - self.reserved_bytes,
                        self.capacity_bytes,
                    )
            self.reserved_bytes += nbytes
            self.peak_reserved_bytes = max(
                self.peak_reserved_bytes, self.reserved_bytes
            )

    def release(self, nbytes: int) -> None:
        """Release a reservation made with :meth:`reserve`."""
        nbytes = int(nbytes)
        with self._cond:
            if nbytes > self.reserved_bytes:
                raise DeviceError(
                    f"releasing {nbytes} B but only "
                    f"{self.reserved_bytes} B are reserved"
                )
            self.reserved_bytes -= nbytes
            self._cond.notify_all()
