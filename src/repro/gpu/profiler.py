"""nvprof-style kernel profile from a run's recorded launches.

Every GPU engine records each simulated kernel launch; this module
aggregates them into the familiar profiler table — calls, total time,
average, share — and computes per-kernel roofline diagnostics.  Since
the cost-ledger refactor each launch carries an *exact* cost-component
decomposition (launch / compute / memory / atomic), so profiles report
per-component second fractions rather than only the coarse single
``bound_by`` label (which is kept, computed as before from the heaviest
launch, for backward compatibility of the JSON records).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.cost_model import GpuModel
from ..hardware.counters import KernelLaunch

__all__ = [
    "KernelProfile",
    "profile_kernels",
    "format_kernel_profile",
    "kernel_profile_records",
]


@dataclass(slots=True)
class KernelProfile:
    """Aggregated statistics of one kernel across a run."""

    name: str
    calls: int
    total_seconds: float
    total_flops: float
    total_bytes: float
    total_atomics: float
    #: Dominant cost component: launch / memory / compute / atomics.
    bound_by: str
    #: Exact per-component seconds (launch / compute / memory / atomic),
    #: summing to ``total_seconds`` when sourced from the cost ledger.
    components: dict[str, float] = field(default_factory=dict)

    @property
    def average_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    def component_shares(self) -> dict[str, float]:
        """Component fractions of this kernel's total time."""
        if self.total_seconds <= 0:
            return {}
        return {
            name: seconds / self.total_seconds
            for name, seconds in self.components.items()
        }


def _bound_by(model: GpuModel, launch: KernelLaunch) -> str:
    """Which roofline term dominates this launch."""
    spec = model.spec
    mem_util, compute_util = model._utilization(launch)
    terms = {
        "launch": spec.kernel_launch_overhead_s,
        "memory": launch.gmem_bytes / (spec.effective_bandwidth * mem_util),
        "compute": launch.flops
        / (spec.core_count * spec.clock_hz * launch.ipc * compute_util),
        "atomics": launch.atomic_ops / spec.atomic_ops_per_s,
    }
    return max(terms, key=terms.get)  # type: ignore[arg-type]


def _ledger_components(model: GpuModel) -> dict[str, dict[str, float]]:
    """Per-kernel component seconds from the model's cost ledger."""
    totals: dict[str, dict[str, float]] = {}
    for event in model.events:
        if event.kind != "kernel":
            continue
        bucket = totals.setdefault(event.name, {})
        for component, seconds in event.component_seconds().items():
            bucket[component] = bucket.get(component, 0.0) + seconds
    return totals


def profile_kernels(model: GpuModel) -> list[KernelProfile]:
    """Aggregate a GPU model's recorded launches per kernel name.

    Returns profiles sorted by total time, descending (the nvprof
    convention).
    """
    groups: dict[str, list[KernelLaunch]] = {}
    for launch in model.counter.kernel_launches:
        groups.setdefault(launch.name, []).append(launch)
    ledger = _ledger_components(model)
    profiles = []
    for name, launches in groups.items():
        components = ledger.get(name)
        if components is None:
            # Counter-only model (no ledger events): recompute each
            # launch's decomposition from the roofline terms.
            components = {}
            for launch in launches:
                seconds = model.launch_time(launch)
                overhead = model.spec.kernel_launch_overhead_s
                components["launch"] = components.get("launch", 0.0) + overhead
                dominant = model.dominant_component(launch)
                components[dominant] = (
                    components.get(dominant, 0.0) + seconds - overhead
                )
        total = sum(components.values())
        # The bound of the most expensive single launch characterizes
        # the kernel (small setup calls of the same kernel don't).
        heaviest = max(launches, key=model.launch_time)
        profiles.append(
            KernelProfile(
                name=name,
                calls=len(launches),
                total_seconds=total,
                total_flops=sum(l.flops for l in launches),
                total_bytes=sum(l.gmem_bytes for l in launches),
                total_atomics=sum(l.atomic_ops for l in launches),
                bound_by=_bound_by(model, heaviest),
                components=components,
            )
        )
    profiles.sort(key=lambda p: -p.total_seconds)
    return profiles


def kernel_profile_records(profiles: list[KernelProfile]) -> list[dict]:
    """Profiles as flat JSON-serializable records (``repro profile --json``).

    The pre-ledger keys (including ``bound_by``) are kept unchanged;
    ``components`` is additive.
    """
    grand_total = sum(p.total_seconds for p in profiles)
    return [
        {
            "name": p.name,
            "calls": p.calls,
            "total_seconds": p.total_seconds,
            "average_seconds": p.average_seconds,
            "total_flops": p.total_flops,
            "total_bytes": p.total_bytes,
            "total_atomics": p.total_atomics,
            "bound_by": p.bound_by,
            "components": dict(p.components),
            "share": p.total_seconds / grand_total if grand_total else 0.0,
        }
        for p in profiles
    ]


def _component_cell(profile: KernelProfile) -> str:
    """Compact per-component share text, largest first."""
    shares = profile.component_shares()
    if not shares:
        return profile.bound_by
    return " ".join(
        f"{name} {share * 100:.0f}%"
        for name, share in sorted(shares.items(), key=lambda i: -i[1])
        if share >= 0.005
    )


def format_kernel_profile(
    profiles: list[KernelProfile], top: int | None = None
) -> str:
    """Render profiles as an nvprof-style table.

    ``top`` limits the table to the N most expensive kernels (the
    remainder is folded into one summary row); the grand total always
    covers every profile.
    """
    if not profiles:
        return "(no kernel launches recorded)"
    shown = profiles if top is None else profiles[:top]
    grand_total = sum(p.total_seconds for p in profiles)
    name_width = max(len(p.name) for p in shown)
    lines = [
        f"{'kernel'.ljust(name_width)}  {'calls':>6}  {'total':>11}  "
        f"{'avg':>10}  {'share':>6}  {'bound by':<8}  components"
    ]
    for p in shown:
        share = p.total_seconds / grand_total if grand_total else 0.0
        lines.append(
            f"{p.name.ljust(name_width)}  {p.calls:>6}  "
            f"{p.total_seconds * 1e3:>9.3f}ms  "
            f"{p.average_seconds * 1e6:>8.2f}us  "
            f"{share * 100:>5.1f}%  {p.bound_by:<8}  {_component_cell(p)}"
        )
    hidden = profiles[len(shown):]
    if hidden:
        rest = sum(p.total_seconds for p in hidden)
        lines.append(
            f"{f'(+{len(hidden)} more)'.ljust(name_width)}  "
            f"{sum(p.calls for p in hidden):>6}  {rest * 1e3:>9.3f}ms"
        )
    lines.append(
        f"{'total'.ljust(name_width)}  {sum(p.calls for p in profiles):>6}  "
        f"{grand_total * 1e3:>9.3f}ms"
    )
    return "\n".join(lines)
