"""nvprof-style kernel profile from a run's recorded launches.

Every GPU engine records each simulated kernel launch; this module
aggregates them into the familiar profiler table — calls, total time,
average, share — and computes per-kernel roofline diagnostics (whether
a kernel is launch-, memory-, compute- or atomic-bound), mirroring how
one reads an Nsight/nvprof capture of the real implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.cost_model import GpuModel
from ..hardware.counters import KernelLaunch

__all__ = [
    "KernelProfile",
    "profile_kernels",
    "format_kernel_profile",
    "kernel_profile_records",
]


@dataclass(slots=True)
class KernelProfile:
    """Aggregated statistics of one kernel across a run."""

    name: str
    calls: int
    total_seconds: float
    total_flops: float
    total_bytes: float
    total_atomics: float
    #: Dominant cost component: launch / memory / compute / atomics.
    bound_by: str

    @property
    def average_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


def _bound_by(model: GpuModel, launch: KernelLaunch) -> str:
    """Which roofline term dominates this launch."""
    spec = model.spec
    mem_util, compute_util = model._utilization(launch)
    terms = {
        "launch": spec.kernel_launch_overhead_s,
        "memory": launch.gmem_bytes / (spec.effective_bandwidth * mem_util),
        "compute": launch.flops
        / (spec.core_count * spec.clock_hz * launch.ipc * compute_util),
        "atomics": launch.atomic_ops / spec.atomic_ops_per_s,
    }
    return max(terms, key=terms.get)  # type: ignore[arg-type]


def profile_kernels(model: GpuModel) -> list[KernelProfile]:
    """Aggregate a GPU model's recorded launches per kernel name.

    Returns profiles sorted by total time, descending (the nvprof
    convention).
    """
    groups: dict[str, list[KernelLaunch]] = {}
    for launch in model.counter.kernel_launches:
        groups.setdefault(launch.name, []).append(launch)
    profiles = []
    for name, launches in groups.items():
        total = sum(model.launch_time(launch) for launch in launches)
        # The bound of the most expensive single launch characterizes
        # the kernel (small setup calls of the same kernel don't).
        heaviest = max(launches, key=model.launch_time)
        profiles.append(
            KernelProfile(
                name=name,
                calls=len(launches),
                total_seconds=total,
                total_flops=sum(l.flops for l in launches),
                total_bytes=sum(l.gmem_bytes for l in launches),
                total_atomics=sum(l.atomic_ops for l in launches),
                bound_by=_bound_by(model, heaviest),
            )
        )
    profiles.sort(key=lambda p: -p.total_seconds)
    return profiles


def kernel_profile_records(profiles: list[KernelProfile]) -> list[dict]:
    """Profiles as flat JSON-serializable records (``repro profile --json``)."""
    grand_total = sum(p.total_seconds for p in profiles)
    return [
        {
            "name": p.name,
            "calls": p.calls,
            "total_seconds": p.total_seconds,
            "average_seconds": p.average_seconds,
            "total_flops": p.total_flops,
            "total_bytes": p.total_bytes,
            "total_atomics": p.total_atomics,
            "bound_by": p.bound_by,
            "share": p.total_seconds / grand_total if grand_total else 0.0,
        }
        for p in profiles
    ]


def format_kernel_profile(profiles: list[KernelProfile]) -> str:
    """Render profiles as an nvprof-style table."""
    if not profiles:
        return "(no kernel launches recorded)"
    grand_total = sum(p.total_seconds for p in profiles)
    name_width = max(len(p.name) for p in profiles)
    lines = [
        f"{'kernel'.ljust(name_width)}  {'calls':>6}  {'total':>11}  "
        f"{'avg':>10}  {'share':>6}  bound by"
    ]
    for p in profiles:
        share = p.total_seconds / grand_total if grand_total else 0.0
        lines.append(
            f"{p.name.ljust(name_width)}  {p.calls:>6}  "
            f"{p.total_seconds * 1e3:>9.3f}ms  "
            f"{p.average_seconds * 1e6:>8.2f}us  "
            f"{share * 100:>5.1f}%  {p.bound_by}"
        )
    lines.append(
        f"{'total'.ljust(name_width)}  {sum(p.calls for p in profiles):>6}  "
        f"{grand_total * 1e3:>9.3f}ms"
    )
    return "\n".join(lines)
