"""Performance baseline store: the quick tier and its on-disk format.

The paper's headline claims are relative running-time shapes, so the
repository freezes them as *committed baselines*: a small fixed tier of
workloads (:data:`QUICK_TIER`) is run over fixed seeds and the modeled
seconds + deterministic work counters of every run are written as one
schema-versioned ``repro.bench_baseline/1`` JSON file per workload
under ``benchmarks/baselines/``.  Because the repository measures
*modeled* device time (a deterministic cost model, not wall clock), a
clean re-run reproduces the baseline bit-for-bit on any machine — any
delta is a code change, not noise.  :mod:`repro.bench.regress` turns
that property into a CI gate.

``repro bench quick --save-baseline`` regenerates the store;
``repro regress`` compares a fresh run against it.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..core import BACKENDS
from ..data.synthetic import generate_subspace_data
from ..obs.explain import attribute_run, attribution_record
from ..obs.explain.diff import summarize_attribution
from ..obs.export import report_envelope
from ..params import ProclusParams
from .reporting import ExperimentReport, format_seconds

__all__ = [
    "BASELINE_SCHEMA",
    "BENCH_QUICK_SCHEMA",
    "DEFAULT_BASELINE_DIR",
    "EXACT_COUNTERS",
    "QUICK_SEEDS",
    "QUICK_TIER",
    "QuickWorkload",
    "run_workload",
    "run_quick_tier",
    "write_baselines",
    "load_baselines",
    "quick_report",
    "bench_quick_record",
]

#: Per-workload baseline file schema (bump on incompatible changes).
BASELINE_SCHEMA = "repro.bench_baseline/1"
#: Aggregate quick-tier report schema (``BENCH_bench_quick.json``).
BENCH_QUICK_SCHEMA = "repro.bench_quick/1"
#: Where the committed baselines live, relative to the repo root.
DEFAULT_BASELINE_DIR = "benchmarks/baselines"

#: Seeds every quick-tier workload is run over.  Five paired samples
#: give the sign test its resolution: all-five-slower has one-sided
#: p = 1/32 < 0.05, so a consistent slowdown is significant while a
#: mixed pattern is not.
QUICK_SEEDS: tuple[int, ...] = (0, 1, 2, 3, 4)

#: Work counters that must match a clean baseline EXACTLY (the modeled
#: pipeline is deterministic, so any drift in these is a behavior
#: change, not noise).  Counters absent from a run are skipped, so one
#: list covers GPU and CPU backends.
EXACT_COUNTERS: tuple[str, ...] = (
    "cache.dist_rows_hit",
    "cache.dist_rows_missed",
    "gpu.flops",
    "gpu.gmem_bytes",
    "gpu.h2d_bytes",
    "gpu.atomic_ops",
    "gpu.kernel_launches",
    "cpu.scalar_ops",
    "cpu.vector_ops",
)


@dataclass(frozen=True, slots=True)
class QuickWorkload:
    """One fixed benchmark configuration of the quick tier."""

    name: str
    backend: str
    n: int
    d: int = 15
    n_clusters: int = 10
    subspace_dims: int = 5
    std: float = 5.0
    k: int = 10
    l: int = 5


#: The quick tier: one workload per headline backend at n=8192 (where
#: the Dist-cache advantage is already measurable), one larger gpu-fast
#: point guarding the scaling shape, and two sharded fleet points (the
#: default two-device fleet) guarding the multi-device collective
#: schedule — their exact counters pin both the kernel stream and the
#: communication steps.  Seconds of wall time in total — cheap enough
#: for a per-PR CI gate.
QUICK_TIER: tuple[QuickWorkload, ...] = (
    QuickWorkload(name="gpu-n8k", backend="gpu", n=8192),
    QuickWorkload(name="gpu-fast-n8k", backend="gpu-fast", n=8192),
    QuickWorkload(name="gpu-fast-star-n8k", backend="gpu-fast-star", n=8192),
    QuickWorkload(name="fast-n8k", backend="fast", n=8192),
    QuickWorkload(name="gpu-fast-n16k", backend="gpu-fast", n=16384),
    QuickWorkload(name="fleet-gpu-n8k", backend="fleet-gpu", n=8192),
    QuickWorkload(name="fleet-gpu-fast-n8k", backend="fleet-gpu-fast", n=8192),
)


def run_workload(
    workload: QuickWorkload,
    seeds: Sequence[int] = QUICK_SEEDS,
    backend: str | None = None,
) -> dict[str, Any]:
    """Run one workload over every seed; returns its baseline record.

    ``backend`` overrides the workload's backend (the regression gate's
    fault-injection hook: running ``gpu-fast`` workloads through
    ``gpu-fast-h-only`` is exactly "the Dist cache was lost").  The
    record always describes the *workload's* declared backend so it
    stays comparable against the committed baseline.
    """
    actual_backend = backend if backend is not None else workload.backend
    modeled: list[float] = []
    wall: list[float] = []
    cost: list[float] = []
    counters: dict[str, list[float]] = {}
    attribution: dict[str, Any] = {
        "total_seconds": 0.0,
        "components": {},
        "kernels": {},
        "pipeline_components": {},
    }
    for seed in seeds:
        dataset = generate_subspace_data(
            n=workload.n,
            d=workload.d,
            n_clusters=workload.n_clusters,
            subspace_dims=workload.subspace_dims,
            std=workload.std,
            seed=seed,
        )
        started = time.perf_counter()
        engine = BACKENDS[actual_backend](
            params=ProclusParams(k=workload.k, l=workload.l), seed=seed
        )
        result = engine.fit(dataset.data)
        wall.append(time.perf_counter() - started)
        modeled.append(result.stats.modeled_seconds)
        cost.append(float(result.cost))
        for name in EXACT_COUNTERS:
            if name in result.stats.counters:
                counters.setdefault(name, []).append(
                    float(result.stats.counters[name])
                )
        # Summed-over-seeds attribution summary: deterministic float
        # sums, so the regress triage diff of a clean re-run is exactly
        # zero everywhere.
        summary = summarize_attribution(
            attribution_record(attribute_run(engine.model))
        )
        attribution["total_seconds"] += summary["total_seconds"]
        for key in ("components", "kernels", "pipeline_components"):
            bucket = attribution[key]
            for name, seconds in summary[key].items():
                bucket[name] = bucket.get(name, 0.0) + seconds
    return {
        **report_envelope(BASELINE_SCHEMA),
        "workload": asdict(workload),
        "seeds": list(seeds),
        "modeled_seconds": modeled,
        "wall_seconds": wall,  # informational only; machine-dependent
        "cost": cost,
        "counters": counters,
        "attribution": attribution,
    }


def run_quick_tier(
    seeds: Sequence[int] = QUICK_SEEDS,
    tier: Sequence[QuickWorkload] = QUICK_TIER,
    backend_map: Mapping[str, str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[dict[str, Any]]:
    """Run the whole quick tier; returns one baseline record per workload.

    ``backend_map`` remaps workload backends before running (the
    deliberate-slowdown injection used by ``repro regress --inject``
    and its tests); unmapped backends run unchanged.
    """
    records = []
    for workload in tier:
        backend = (backend_map or {}).get(workload.backend)
        if progress is not None:
            note = f" (as {backend})" if backend else ""
            progress(f"running {workload.name}{note} ...")
        records.append(run_workload(workload, seeds, backend=backend))
    return records


# ----------------------------------------------------------------------
# Store IO
# ----------------------------------------------------------------------
def write_baselines(
    records: Sequence[dict[str, Any]], directory: str | Path
) -> list[Path]:
    """Write one ``<workload-name>.json`` per record; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for record in records:
        path = directory / f"{record['workload']['name']}.json"
        with open(path, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths


def load_baselines(directory: str | Path) -> dict[str, dict[str, Any]]:
    """Load every baseline record from a store directory, keyed by name.

    Returns an empty dict for a missing or empty directory (the
    regression gate treats that as an invalid baseline, exit 2).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return {}
    records: dict[str, dict[str, Any]] = {}
    for path in sorted(directory.glob("*.json")):
        record = json.loads(path.read_text())
        name = record.get("workload", {}).get("name", path.stem)
        records[name] = record
    return records


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def quick_report(records: Sequence[dict[str, Any]]) -> ExperimentReport:
    """Render quick-tier records as the harness's standard report."""
    report = ExperimentReport(
        experiment_id="quick",
        title="Quick-tier baseline workloads (modeled seconds over seeds)",
        columns=["workload", "backend", "n", "modeled mean", "modeled min",
                 "modeled max", "dist hit-rate"],
        paper_reference=(
            "not a paper figure; the committed performance baseline the "
            "regression gate (repro regress) compares against"
        ),
    )
    for record in records:
        workload = record["workload"]
        modeled = record["modeled_seconds"]
        mean = sum(modeled) / len(modeled)
        hits = sum(record["counters"].get("cache.dist_rows_hit", [0.0]))
        misses = sum(record["counters"].get("cache.dist_rows_missed", [0.0]))
        rate = hits / (hits + misses) if hits + misses else 0.0
        report.add_row(
            workload["name"],
            workload["backend"],
            workload["n"],
            format_seconds(mean).strip(),
            format_seconds(min(modeled)).strip(),
            format_seconds(max(modeled)).strip(),
            f"{rate:.3f}",
        )
        report.add_series("modeled_mean", workload["name"], mean)
        report.key_numbers[f"{workload['name']}_modeled_mean"] = mean
    return report


def bench_quick_record(
    records: Sequence[dict[str, Any]], wall_seconds: float
) -> dict[str, Any]:
    """The aggregate ``BENCH_bench_quick.json`` payload."""
    workloads = []
    for record in records:
        modeled = record["modeled_seconds"]
        workloads.append(
            {
                "name": record["workload"]["name"],
                "backend": record["workload"]["backend"],
                "n": record["workload"]["n"],
                "seeds": record["seeds"],
                "modeled_seconds": modeled,
                "modeled_mean": sum(modeled) / len(modeled),
                "counters": {
                    name: sum(values)
                    for name, values in record["counters"].items()
                },
            }
        )
    return {
        **report_envelope(BENCH_QUICK_SCHEMA),
        "ok": True,
        "wall_seconds": wall_seconds,
        "workloads": workloads,
    }
