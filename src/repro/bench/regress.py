"""The performance-regression gate: fresh quick-tier run vs baseline.

Compares a fresh :mod:`repro.bench.baseline` run against the committed
store with two noise-aware detectors:

* **Modeled seconds** — per-seed paired deltas.  A workload regresses
  only when the mean relative slowdown exceeds ``rel_threshold`` AND a
  one-sided sign test over the non-tied pairs is significant (``p <=
  alpha``): a consistent all-seeds-slower pattern at 5 seeds has
  p = 1/32 < 0.05, while a mixed faster/slower pattern does not reach
  significance.  Because modeled time is a deterministic cost model, a
  clean re-run produces all-ties (p = 1) and can never trip the gate.
* **Exact metrics** — deterministic work counters
  (:data:`~repro.bench.baseline.EXACT_COUNTERS`) and the final
  clustering cost must match the baseline bit-for-bit, per seed.  Any
  drift is a behavior change: a lost cache shows up here as a hit-rate
  collapse long before the time delta is large.

The verdict is a schema-versioned ``repro.regress/1`` report with the
CLI exit code embedded: 0 ok, 1 regression, 2 invalid baseline
(missing store, seed/workload mismatch, malformed record).
``repro regress`` writes it as ``BENCH_regress.json``.
"""

from __future__ import annotations

from math import comb
from typing import Any, Mapping, Sequence

from ..obs.explain.diff import triage_record
from ..obs.export import report_envelope
from .baseline import BASELINE_SCHEMA, EXACT_COUNTERS

__all__ = [
    "REGRESS_SCHEMA",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_INVALID_BASELINE",
    "sign_test_p",
    "compare_samples",
    "compare_workload",
    "run_regression_check",
]

#: Verdict report schema (``BENCH_regress.json``).
REGRESS_SCHEMA = "repro.regress/1"

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_INVALID_BASELINE = 2

#: Default mean-relative-slowdown threshold.  Deterministic modeled
#: time makes clean runs all-ties, so this guards only against flagging
#: a significant-but-negligible drift (e.g. a deliberate constant
#: tweak); 0.5% is far below any real lost optimization.
DEFAULT_REL_THRESHOLD = 0.005
#: Sign-test significance level.
DEFAULT_ALPHA = 0.05


def sign_test_p(slower: int, faster: int) -> float:
    """One-sided sign test: P(>= ``slower`` of n pairs slow by chance).

    ``slower``/``faster`` are the non-tied pair counts (ties carry no
    directional evidence and must be excluded by the caller).  Returns
    1.0 when there are no non-tied pairs.
    """
    if slower < 0 or faster < 0:
        raise ValueError(
            f"pair counts must be non-negative, got {slower}, {faster}"
        )
    n = slower + faster
    if n == 0:
        return 1.0
    return sum(comb(n, i) for i in range(slower, n + 1)) / 2.0**n


def compare_samples(
    baseline: Sequence[float],
    fresh: Sequence[float],
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
) -> dict[str, Any]:
    """Compare paired modeled-seconds samples; returns the verdict dict.

    Regression requires BOTH a mean relative slowdown above
    ``rel_threshold`` and sign-test significance over the non-tied
    pairs — magnitude alone (one bad seed) or consistency alone (five
    seeds each 0.01% slower) is not enough.
    """
    if len(baseline) != len(fresh):
        raise ValueError(
            f"paired samples differ in length: {len(baseline)} vs {len(fresh)}"
        )
    if not baseline:
        raise ValueError("cannot compare empty samples")
    deltas = [
        (new - old) / old if old else 0.0
        for old, new in zip(baseline, fresh)
    ]
    mean_rel_delta = sum(deltas) / len(deltas)
    slower = sum(1 for old, new in zip(baseline, fresh) if new > old)
    faster = sum(1 for old, new in zip(baseline, fresh) if new < old)
    p_slower = sign_test_p(slower, faster)
    return {
        "baseline": list(baseline),
        "fresh": list(fresh),
        "rel_deltas": deltas,
        "mean_rel_delta": mean_rel_delta,
        "slower": slower,
        "faster": faster,
        "ties": len(deltas) - slower - faster,
        "p_slower": p_slower,
        "regression": mean_rel_delta > rel_threshold and p_slower <= alpha,
    }


def compare_workload(
    baseline: Mapping[str, Any],
    fresh: Mapping[str, Any],
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
) -> dict[str, Any]:
    """Compare one fresh workload record against its committed baseline.

    Returns a per-workload verdict: ``invalid`` problems (the records
    are not comparable — wrong schema, different workload definition or
    seeds), ``regressions`` (human-readable, offending metric named),
    and the modeled-seconds comparison detail.
    """
    name = fresh.get("workload", {}).get("name", "?")
    invalid: list[str] = []
    if baseline.get("schema") != BASELINE_SCHEMA:
        invalid.append(
            f"baseline schema must be {BASELINE_SCHEMA!r}, "
            f"got {baseline.get('schema')!r}"
        )
    if baseline.get("workload") != fresh.get("workload"):
        invalid.append(
            "workload definitions differ between baseline and fresh run "
            f"({baseline.get('workload')} vs {fresh.get('workload')})"
        )
    if baseline.get("seeds") != fresh.get("seeds"):
        invalid.append(
            f"seeds differ: baseline {baseline.get('seeds')} vs "
            f"fresh {fresh.get('seeds')}"
        )
    for key in ("modeled_seconds", "cost", "counters"):
        if key not in baseline:
            invalid.append(f"baseline record is missing {key!r}")
    if invalid:
        return {"name": name, "invalid": invalid, "regressions": [],
                "modeled": None, "ok": False}

    regressions: list[str] = []
    modeled = compare_samples(
        baseline["modeled_seconds"], fresh["modeled_seconds"],
        rel_threshold=rel_threshold, alpha=alpha,
    )
    if modeled["regression"]:
        regressions.append(
            f"modeled_seconds: mean +{modeled['mean_rel_delta'] * 100:.2f}% "
            f"({modeled['slower']}/{len(baseline['seeds'])} seeds slower, "
            f"sign-test p={modeled['p_slower']:.4f})"
        )

    # Deterministic metrics: exact per-seed equality or it is a change.
    for counter in EXACT_COUNTERS:
        old = baseline["counters"].get(counter)
        new = fresh["counters"].get(counter)
        if old == new:
            continue
        regressions.append(
            f"exact counter {counter}: baseline {_summarize(old)} vs "
            f"fresh {_summarize(new)}"
        )
    if baseline["cost"] != fresh["cost"]:
        regressions.append(
            f"clustering cost drifted: baseline {_summarize(baseline['cost'])} "
            f"vs fresh {_summarize(fresh['cost'])} (determinism change)"
        )
    verdict = {
        "name": name,
        "invalid": [],
        "regressions": regressions,
        "modeled": modeled,
        "ok": not regressions,
    }
    if regressions:
        # Differential attribution: which counters / kernels /
        # pipeline-component buckets moved, so the gate says *why*.
        verdict["triage"] = triage_record(baseline, fresh)
    return verdict


def _summarize(values: Any) -> str:
    if isinstance(values, list) and len(values) > 3:
        return f"[{values[0]:g}, {values[1]:g}, ...] (sum {sum(values):g})"
    return repr(values)


def run_regression_check(
    baselines: Mapping[str, Mapping[str, Any]],
    fresh: Sequence[Mapping[str, Any]],
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
) -> dict[str, Any]:
    """Full gate: every fresh workload vs the store; returns the verdict.

    The report embeds ``exit_code``: 2 when the baseline store is
    unusable (empty, missing workloads, or any per-workload
    comparability problem), 1 when any workload regressed, else 0.
    """
    workloads = []
    invalid: list[str] = []
    regressed: list[str] = []
    triage: list[str] = []
    if not baselines:
        invalid.append(
            "baseline store is empty — run "
            "'repro bench quick --save-baseline' and commit the result"
        )
    for record in fresh:
        name = record.get("workload", {}).get("name", "?")
        base = baselines.get(name)
        if base is None:
            if baselines:
                invalid.append(f"no committed baseline for workload {name!r}")
            continue
        verdict = compare_workload(
            base, record, rel_threshold=rel_threshold, alpha=alpha
        )
        workloads.append(verdict)
        if verdict["invalid"]:
            invalid.extend(f"{name}: {issue}" for issue in verdict["invalid"])
        elif verdict["regressions"]:
            regressed.append(name)
            clauses = (verdict.get("triage") or {}).get("lines") or []
            modeled = verdict.get("modeled") or {}
            delta = modeled.get("mean_rel_delta", 0.0)
            detail = "; ".join(clauses[:3]) if clauses else verdict["regressions"][0]
            triage.append(f"{name} {delta * 100:+.1f}%: {detail}")
    if invalid:
        exit_code = EXIT_INVALID_BASELINE
    elif regressed:
        exit_code = EXIT_REGRESSION
    else:
        exit_code = EXIT_OK
    return {
        **report_envelope(REGRESS_SCHEMA),
        "ok": exit_code == EXIT_OK,
        "exit_code": exit_code,
        "rel_threshold": rel_threshold,
        "alpha": alpha,
        "regressed": regressed,
        "invalid": invalid,
        "triage": triage,
        "workloads": workloads,
    }
