"""Benchmark harness regenerating the paper's figures and tables.

Each function in :mod:`repro.bench.figures` reproduces one experiment of
the paper's Section 5 and returns an :class:`ExperimentReport` whose
rendered table places the measured (modeled) numbers next to the
paper's reported values.  The ``benchmarks/`` directory wraps each
function in a pytest-benchmark target.

Scale control: by default the sweeps run scaled-down sizes so the whole
suite finishes in minutes on a laptop; set ``REPRO_BENCH_SCALE=paper``
to sweep the paper's full dataset sizes (hours, needs tens of GB RAM).
"""

from .baseline import (
    QUICK_TIER,
    QuickWorkload,
    load_baselines,
    run_quick_tier,
    write_baselines,
)
from .regress import run_regression_check
from .reporting import ExperimentReport
from .workloads import bench_scale, default_n, repeats

__all__ = [
    "ExperimentReport",
    "bench_scale",
    "default_n",
    "repeats",
    "QuickWorkload",
    "QUICK_TIER",
    "run_quick_tier",
    "write_baselines",
    "load_baselines",
    "run_regression_check",
]
