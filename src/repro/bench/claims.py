"""Machine-checkable registry of the paper's quantitative claims.

``EXPERIMENTS.md`` narrates the paper-vs-measured comparison; this
module operationalizes it.  Each :class:`Claim` states where the paper
makes an assertion, measures the corresponding quantity with the
library, and checks it against an acceptance band.  Bands are
deliberately generous where the claim is about *shape* (an order of
magnitude, a monotone trend) and tight where it is structural
(identical clusterings, occupancy percentages, memory hierarchies).

Run the whole registry with ``python -m repro claims`` or via
``repro.bench.claims.check_all()``; the suite also executes it in
``tests/test_paper_claims.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.api import proclus
from ..core.multiparam import ReuseLevel
from ..data.synthetic import generate_subspace_data
from ..eval.timing import time_backend, time_parameter_study
from ..eval.validation import validate_equivalence
from ..gpu.occupancy import occupancy_report
from ..hardware.specs import GTX_1660_TI, RTX_3090
from ..params import ParameterGrid, ProclusParams
from .figures import gpu_variant_footprint

__all__ = ["Claim", "ClaimResult", "CLAIMS", "check_all", "format_results"]

#: Workload size the checks run at (large enough for the asymptotic
#: claims to show, small enough to run in tens of seconds).
_CHECK_N = 32_768


@dataclass(frozen=True, slots=True)
class Claim:
    """One of the paper's assertions, with a measurement procedure."""

    claim_id: str
    source: str  #: where the paper states it (section/figure)
    statement: str  #: the paper's assertion, paraphrased
    check: Callable[[], tuple[bool, str]]  #: returns (passed, measured)


@dataclass(frozen=True, slots=True)
class ClaimResult:
    claim: Claim
    passed: bool
    measured: str


def _workload(n=_CHECK_N, d=15, **kw):
    def factory(seed):
        return generate_subspace_data(n=n, d=d, seed=seed, **kw)

    return factory


def _single_times(*backends: str, n: int = _CHECK_N) -> dict[str, float]:
    return {
        b: time_backend(b, _workload(n), repeats=1).modeled_seconds
        for b in backends
    }


def _check_identical_clusterings() -> tuple[bool, str]:
    report = validate_equivalence(n=1500, d=10, seeds=(0, 1))
    return report.passed, f"{report.runs} runs, {len(report.failures)} divergent"


def _check_three_orders() -> tuple[bool, str]:
    t = _single_times("proclus", "gpu-fast", n=65_536)
    speedup = t["proclus"] / t["gpu-fast"]
    return speedup >= 500, f"gpu-fast speedup {speedup:.0f}x at n=65536"


def _check_fast_band() -> tuple[bool, str]:
    t = _single_times("proclus", "fast", n=65_536)
    ratio = t["proclus"] / t["fast"]
    return 1.1 <= ratio <= 1.6, f"fast vs proclus {ratio:.2f}x (paper 1.2-1.4x)"


def _check_gpu_fast_band() -> tuple[bool, str]:
    t = _single_times("gpu", "gpu-fast", n=65_536)
    ratio = t["gpu"] / t["gpu-fast"]
    return 1.1 <= ratio <= 1.6, f"gpu-fast vs gpu {ratio:.2f}x (paper 1.2-1.4x)"


def _check_fast_star_slowdown() -> tuple[bool, str]:
    t = _single_times("fast", "fast-star")
    ratio = t["fast-star"] / t["fast"]
    return 0.99 <= ratio <= 1.15, f"fast* / fast = {ratio:.3f} (paper 1.05-1.1)"


def _check_multicore_band() -> tuple[bool, str]:
    t = _single_times("proclus", "multicore")
    ratio = t["proclus"] / t["multicore"]
    return 3.0 <= ratio <= 6.0, f"multicore speedup {ratio:.1f}x (paper up to 6x)"


def _check_speedup_grows_with_n() -> tuple[bool, str]:
    speedups = []
    for n in (2_048, 8_192, 32_768):
        t = _single_times("proclus", "gpu", n=n)
        speedups.append(t["proclus"] / t["gpu"])
    monotone = speedups[0] < speedups[1] < speedups[2]
    return monotone, "speedups " + " -> ".join(f"{s:.0f}x" for s in speedups)


def _check_real_time_at_1m() -> tuple[bool, str]:
    """<100 ms at one million points (modeled, GTX 1660 Ti)."""
    t = time_backend(
        "gpu-fast", _workload(n=2**20), repeats=1
    ).modeled_seconds
    return t < 0.1, f"{t * 1e3:.1f} ms at n=2^20 (budget 100 ms)"


def _check_multiparam_levels_monotone() -> tuple[bool, str]:
    grid = ParameterGrid()
    times = {}
    for level in (ReuseLevel.NONE, ReuseLevel.GREEDY, ReuseLevel.WARM_START):
        times[level] = time_parameter_study(
            "gpu-fast", _workload(n=65_536), grid=grid, level=level, repeats=1
        ).modeled_seconds
    ordered = (
        times[ReuseLevel.WARM_START]
        < times[ReuseLevel.GREEDY]
        < times[ReuseLevel.NONE]
    )
    final = times[ReuseLevel.NONE] / times[ReuseLevel.WARM_START]
    return ordered and final >= 1.5, f"level 3 gives {final:.2f}x (paper ~2.3x)"


def _check_occupancy_readings() -> tuple[bool, str]:
    big = occupancy_report(GTX_1660_TI, 50, 1024).as_percentages()
    small = occupancy_report(GTX_1660_TI, 50, 800).as_percentages()
    delta = occupancy_report(GTX_1660_TI, 10, 10).as_percentages()
    ok = (
        big == (100.0, 100.0)
        and abs(small[0] - 78.12) < 0.01
        and delta == (50.0, 3.12)
    )
    return ok, f"readings {big}, {small}, {delta}"


def _check_oom_at_8m() -> tuple[bool, str]:
    need = gpu_variant_footprint("gpu-fast", 2**23, 15, ProclusParams(k=12))
    over_small = need > GTX_1660_TI.usable_bytes
    fits_big = need < RTX_3090.usable_bytes
    return over_small and fits_big, (
        f"{need / 1024**3:.2f} GiB vs {GTX_1660_TI.usable_bytes / 1024**3:.1f} "
        f"GiB free (1660 Ti) / {RTX_3090.usable_bytes / 1024**3:.1f} GiB (3090)"
    )


def _check_space_hierarchy() -> tuple[bool, str]:
    p = ProclusParams()
    n = 100_000
    gpu = gpu_variant_footprint("gpu", n, 15, p)
    fast = gpu_variant_footprint("gpu-fast", n, 15, p)
    star = gpu_variant_footprint("gpu-fast-star", n, 15, p)
    ok = fast > 1.5 * star and abs(star - gpu) / gpu < 0.1
    return ok, (
        f"fast/fast* = {fast / star:.2f}, fast*/gpu = {star / gpu:.3f} "
        f"(paper: ~2x and ~1x; ours is ~3x — see EXPERIMENTS.md)"
    )


def _check_cost_flat_in_distribution() -> tuple[bool, str]:
    times = []
    for std in (1.0, 5.0, 15.0):
        times.append(
            time_backend(
                "gpu", _workload(n=16_384, std=std), repeats=1
            ).modeled_seconds
        )
    spread = max(times) / min(times)
    return spread < 2.0, f"max/min runtime over sigma sweep = {spread:.2f}"


#: The registry, in the order the paper states the claims.
CLAIMS: tuple[Claim, ...] = (
    Claim(
        "identical-clusterings", "Sec. 4.1 / 5.1",
        "all variants produce the same clustering as PROCLUS",
        _check_identical_clusterings,
    ),
    Claim(
        "three-orders", "Abstract / Sec. 5",
        "~3 orders of magnitude speedup over PROCLUS",
        _check_three_orders,
    ),
    Claim(
        "fast-speedup", "Fig. 1 / Sec. 5.1",
        "algorithmic strategies give 1.2-1.4x (CPU)",
        _check_fast_band,
    ),
    Claim(
        "gpu-fast-speedup", "Fig. 1 / Sec. 5.1",
        "algorithmic strategies give 1.2-1.4x (GPU)",
        _check_gpu_fast_band,
    ),
    Claim(
        "fast-star-slowdown", "Fig. 1 / Sec. 5.1",
        "FAST* is a 1.05-1.1x slowdown vs FAST",
        _check_fast_star_slowdown,
    ),
    Claim(
        "multicore", "Sec. 5.1",
        "multi-core CPU version gives up to 6x",
        _check_multicore_band,
    ),
    Claim(
        "speedup-grows", "Sec. 5.1 / Fig. 2a-2b",
        "GPU speedup increases with input size",
        _check_speedup_grows_with_n,
    ),
    Claim(
        "real-time-1m", "Sec. 5.1",
        "PROCLUS in <100 ms for 1,000,000 points",
        _check_real_time_at_1m,
    ),
    Claim(
        "multiparam-levels", "Sec. 5.3",
        "reuse levels give up to ~2.3x over one-at-a-time",
        _check_multiparam_levels_monotone,
    ),
    Claim(
        "occupancy", "Sec. 5.4",
        "Nsight occupancy readings of the key kernels",
        _check_occupancy_readings,
    ),
    Claim(
        "oom-8m", "Sec. 5.3 / Fig. 3e",
        "space becomes limiting at 8M points on the 6 GB card",
        _check_oom_at_8m,
    ),
    Claim(
        "space-hierarchy", "Fig. 3f",
        "GPU-FAST* uses about half of GPU-FAST; GPU-FAST* ~ GPU-PROCLUS",
        _check_space_hierarchy,
    ),
    Claim(
        "distribution-flat", "Fig. 2e-2f",
        "running time largely unaffected by the data distribution",
        _check_cost_flat_in_distribution,
    ),
)


def check_all(claims: tuple[Claim, ...] = CLAIMS) -> list[ClaimResult]:
    """Evaluate every claim; returns one result per claim."""
    results = []
    for claim in claims:
        passed, measured = claim.check()
        results.append(ClaimResult(claim=claim, passed=passed, measured=measured))
    return results


def format_results(results: list[ClaimResult]) -> str:
    """Render claim results as a pass/fail table."""
    width = max(len(r.claim.claim_id) for r in results)
    lines = [f"{'claim'.ljust(width)}  status  measured"]
    for r in results:
        status = "PASS" if r.passed else "FAIL"
        lines.append(f"{r.claim.claim_id.ljust(width)}  {status:6}  {r.measured}")
    passed = sum(r.passed for r in results)
    lines.append(f"\n{passed}/{len(results)} claims reproduced")
    return "\n".join(lines)
