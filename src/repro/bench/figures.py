"""One experiment function per figure/table of the paper's Section 5.

Every function runs the real algorithms on generated data, collects the
modeled running times from the hardware cost models, and returns an
:class:`~repro.bench.reporting.ExperimentReport` that renders the
measured numbers next to the paper's reported values.  The functions
are wrapped by the pytest-benchmark targets in ``benchmarks/``.
"""

from __future__ import annotations

from ..core.multiparam import ReuseLevel
from ..data.normalize import minmax_normalize
from ..data.realworld import REAL_WORLD_SIZES, load_dataset
from ..eval.timing import time_backend, time_parameter_study
from ..data.synthetic import generate_subspace_data
from ..hardware.counters import KernelLaunch
from ..hardware.cost_model import GpuModel
from ..hardware.specs import GTX_1660_TI
from ..gpu.occupancy import occupancy_report
from ..params import ParameterGrid, ProclusParams
from . import workloads
from .reporting import ExperimentReport, format_seconds

__all__ = [
    "ablation_strategies",
    "fig1_strategy_speedup",
    "fig2ab_scale_n",
    "fig2cd_scale_d",
    "fig2e_data_clusters",
    "fig2f_stddev",
    "fig2gk_params",
    "fig3ae_multiparam_scale",
    "fig3f_space",
    "fig3g_realworld",
    "sec53_multiparam_levels",
    "sec54_utilization",
    "gpu_variant_footprint",
]

#: All single-setting variants, in the paper's plotting order.
ALL_VARIANTS = (
    "proclus",
    "fast",
    "fast-star",
    "multicore",
    "gpu",
    "gpu-fast",
    "gpu-fast-star",
)


def _workload(n: int, d: int = 15, **kwargs):
    def factory(seed: int):
        return generate_subspace_data(n=n, d=d, seed=seed, **kwargs)

    return factory


def ablation_strategies() -> ExperimentReport:
    """Ablation (beyond the paper): attribute FAST's speedup to its parts.

    Section 3 combines two strategies; this experiment runs each one in
    isolation to show where the 1.2-1.4x comes from — the Dist cache
    (strategy 1) dominates, the incremental H (strategy 2) adds the
    rest.  DESIGN.md lists this as the design-choice ablation.
    """
    report = ExperimentReport(
        experiment_id="ablation",
        title="FAST strategies ablated: Dist cache vs incremental H",
        columns=[
            "n",
            "proclus",
            "dist-cache only",
            "incremental-H only",
            "fast (both)",
            "dist-only speedup",
            "h-only speedup",
            "both speedup",
        ],
        paper_reference=(
            "the paper evaluates the strategies only jointly "
            "(1.2-1.4x, Fig. 1); this attributes the gain to its parts"
        ),
    )
    reps = workloads.repeats()
    for n in workloads.n_sweep():
        t = {
            name: time_backend(name, _workload(n), repeats=reps).modeled_seconds
            for name in ("proclus", "fast-dist-only", "fast-h-only", "fast")
        }
        report.add_row(
            n,
            format_seconds(t["proclus"]),
            format_seconds(t["fast-dist-only"]),
            format_seconds(t["fast-h-only"]),
            format_seconds(t["fast"]),
            f"{t['proclus'] / t['fast-dist-only']:.2f}x",
            f"{t['proclus'] / t['fast-h-only']:.2f}x",
            f"{t['proclus'] / t['fast']:.2f}x",
        )
    report.key_numbers["backends"] = "fast-dist-only,fast-h-only"
    return report


def fig1_strategy_speedup() -> ExperimentReport:
    """Fig. 1: speedup of the FAST strategies w.r.t. GPU-PROCLUS."""
    report = ExperimentReport(
        experiment_id="fig1",
        title="Speedup of FAST strategies w.r.t. GPU-PROCLUS / PROCLUS",
        columns=[
            "n",
            "gpu-fast vs gpu",
            "gpu-fast* vs gpu",
            "fast vs proclus",
            "fast* vs fast (slowdown)",
        ],
        paper_reference=(
            "algorithmic strategies give 1.2-1.4x for both PROCLUS and "
            "GPU-PROCLUS; FAST* is a 1.05-1.1x slowdown vs FAST"
        ),
    )
    reps = workloads.repeats()
    for n in workloads.n_sweep():
        t = {
            name: time_backend(name, _workload(n), repeats=reps).modeled_seconds
            for name in ("proclus", "fast", "fast-star", "gpu", "gpu-fast", "gpu-fast-star")
        }
        report.add_row(
            n,
            f"{t['gpu'] / t['gpu-fast']:.2f}x",
            f"{t['gpu'] / t['gpu-fast-star']:.2f}x",
            f"{t['proclus'] / t['fast']:.2f}x",
            f"{t['fast-star'] / t['fast']:.3f}",
        )
        if n == workloads.n_sweep()[-1]:
            report.key_numbers["gpu_fast_vs_gpu"] = round(t["gpu"] / t["gpu-fast"], 2)
            report.key_numbers["fast_vs_proclus"] = round(t["proclus"] / t["fast"], 2)
    return report


def fig2ab_scale_n() -> ExperimentReport:
    """Figs. 2a-2b: running time and speedup as n grows."""
    report = ExperimentReport(
        experiment_id="fig2ab",
        title="Average running time vs dataset size (single setting)",
        columns=["n"] + list(ALL_VARIANTS) + ["gpu-fast speedup"],
        paper_reference=(
            "GPU parallelization gives ~2000x over the CPU counterpart, "
            "growing with n then flattening; multicore ~6x; <100 ms at 1M points"
        ),
    )
    reps = workloads.repeats()
    last_speedup = 0.0
    for n in workloads.n_sweep():
        times = {
            name: time_backend(name, _workload(n), repeats=reps).modeled_seconds
            for name in ALL_VARIANTS
        }
        last_speedup = times["proclus"] / times["gpu-fast"]
        report.add_row(
            n,
            *(format_seconds(times[name]) for name in ALL_VARIANTS),
            f"{last_speedup:.0f}x",
        )
        for name in ("proclus", "fast", "multicore", "gpu", "gpu-fast"):
            report.add_series(name, n, times[name])
    report.key_numbers["max_speedup"] = round(last_speedup)
    return report


def fig2cd_scale_d() -> ExperimentReport:
    """Figs. 2c-2d: running time and speedup as d grows."""
    report = ExperimentReport(
        experiment_id="fig2cd",
        title="Average running time vs dimensionality",
        columns=["d", "proclus", "gpu", "gpu-fast", "gpu speedup"],
        paper_reference=(
            "speedup between 896x and 1265x, higher for lower d"
        ),
    )
    n = workloads.default_n()
    reps = workloads.repeats()
    for d in workloads.d_sweep():
        sub = min(5, d)
        times = {
            name: time_backend(
                name, _workload(n, d=d, subspace_dims=sub), repeats=reps
            ).modeled_seconds
            for name in ("proclus", "gpu", "gpu-fast")
        }
        report.add_row(
            d,
            format_seconds(times["proclus"]),
            format_seconds(times["gpu"]),
            format_seconds(times["gpu-fast"]),
            f"{times['proclus'] / times['gpu']:.0f}x",
        )
    return report


def fig2e_data_clusters() -> ExperimentReport:
    """Fig. 2e: effect of the number of clusters in the data."""
    report = ExperimentReport(
        experiment_id="fig2e",
        title="Running time vs number of generated clusters",
        columns=["clusters in data", "proclus", "gpu", "gpu-fast"],
        paper_reference="running time largely unaffected by the data's cluster count",
    )
    n = workloads.default_n()
    reps = workloads.repeats()
    for c in workloads.data_cluster_sweep():
        times = {
            name: time_backend(
                name, _workload(n, n_clusters=c), repeats=reps
            ).modeled_seconds
            for name in ("proclus", "gpu", "gpu-fast")
        }
        report.add_row(
            c,
            format_seconds(times["proclus"]),
            format_seconds(times["gpu"]),
            format_seconds(times["gpu-fast"]),
        )
    return report


def fig2f_stddev() -> ExperimentReport:
    """Fig. 2f: effect of the generated clusters' standard deviation."""
    report = ExperimentReport(
        experiment_id="fig2f",
        title="Running time vs cluster standard deviation",
        columns=["std", "proclus", "gpu", "gpu-fast"],
        paper_reference="running time largely unaffected by the data distribution",
    )
    n = workloads.default_n()
    reps = workloads.repeats()
    for std in workloads.stddev_sweep():
        times = {
            name: time_backend(
                name, _workload(n, std=std), repeats=reps
            ).modeled_seconds
            for name in ("proclus", "gpu", "gpu-fast")
        }
        report.add_row(
            std,
            format_seconds(times["proclus"]),
            format_seconds(times["gpu"]),
            format_seconds(times["gpu-fast"]),
        )
    return report


#: Parameter sweeps for Figs. 2g-2k: (figure, parameter, values).
_PARAM_SWEEPS = (
    ("fig2g", "k", (5, 10, 15, 20)),
    ("fig2h", "l", (2, 4, 6, 8)),
    ("fig2i", "a", (50, 100, 200)),
    ("fig2j", "b", (5, 10, 20)),
    ("fig2k", "min_deviation", (0.5, 0.7, 0.9)),
)


def fig2gk_params() -> ExperimentReport:
    """Figs. 2g-2k: effect of each algorithm parameter."""
    report = ExperimentReport(
        experiment_id="fig2gk",
        title="Running time vs algorithm parameters (k, l, A, B, minDev)",
        columns=["figure", "param", "value", "proclus", "gpu", "gpu-fast", "speedup"],
        paper_reference=(
            "running time almost constant except k and B (distance rows "
            "grow); speedup remains ~1100x throughout"
        ),
    )
    n = workloads.default_n()
    for figure, param, values in _PARAM_SWEEPS:
        for value in values:
            params = ProclusParams().with_(**{param: value})
            times = {
                name: time_backend(
                    name, _workload(n), params=params, repeats=1
                ).modeled_seconds
                for name in ("proclus", "gpu", "gpu-fast")
            }
            report.add_row(
                figure,
                param,
                value,
                format_seconds(times["proclus"]),
                format_seconds(times["gpu"]),
                format_seconds(times["gpu-fast"]),
                f"{times['proclus'] / times['gpu']:.0f}x",
            )
    return report


def fig3ae_multiparam_scale() -> ExperimentReport:
    """Figs. 3a-3e: average time per (k, l) combination vs n."""
    report = ExperimentReport(
        experiment_id="fig3ae",
        title="Multi-parameter study (9 combos): avg time per combination",
        columns=["n", "proclus", "gpu", "gpu-fast (mp3)", "speedup"],
        paper_reference=(
            "GPU-FAST-PROCLUS up to ~7000x over PROCLUS; avg time <1 s even "
            "at 8M points; GPU-FAST exceeds the 1660 Ti's free memory at 8M"
        ),
    )
    reps = workloads.repeats()
    grid = ParameterGrid()
    for n in workloads.multiparam_n_sweep():
        base = time_parameter_study(
            "proclus", _workload(n), grid=grid, level=0, repeats=reps
        ).modeled_seconds
        gpu = time_parameter_study(
            "gpu", _workload(n), grid=grid, level=0, repeats=reps
        ).modeled_seconds
        gpu_fast = time_parameter_study(
            "gpu-fast", _workload(n), grid=grid,
            level=ReuseLevel.WARM_START, repeats=reps,
        ).modeled_seconds
        report.add_row(
            n,
            format_seconds(base),
            format_seconds(gpu),
            format_seconds(gpu_fast),
            f"{base / gpu_fast:.0f}x",
        )
        report.add_series("proclus", n, base)
        report.add_series("gpu", n, gpu)
        report.add_series("gpu-fast mp3", n, gpu_fast)
        report.key_numbers["max_multiparam_speedup"] = round(base / gpu_fast)
    # The out-of-memory observation at 8M points (analytic footprint).
    n_oom = 2**23
    footprint = gpu_variant_footprint("gpu-fast", n_oom, 15, ProclusParams(k=12))
    fits = footprint <= GTX_1660_TI.usable_bytes
    report.key_numbers["gpu_fast_bytes_at_8M"] = footprint
    report.paper_reference += (
        f" | footprint check at n=2^23: GPU-FAST needs "
        f"{footprint / 1024**3:.2f} GiB vs "
        f"{GTX_1660_TI.usable_bytes / 1024**3:.1f} GiB free on the 6 GiB card "
        f"-> {'fits' if fits else 'out of memory, as the paper reports'}"
    )
    return report


def gpu_variant_footprint(backend: str, n: int, d: int, params: ProclusParams) -> int:
    """Analytic device-memory footprint of a GPU variant's allocations.

    Mirrors the allocation list of
    :meth:`repro.gpu_impl.accounting.GpuEngineMixin._setup`; a unit test
    pins this formula to the engines' actual measured peaks.
    """
    k = params.k
    m = params.num_potential_medoids
    common = (
        n * d * 4  # data
        + params.sample_size * 4  # greedy distance buffer
        + m * 4  # M
        + 2 * k * n * 4  # L and C index arrays (worst case n each)
        + 2 * k * 4  # L/C sizes
        + n * 4  # labels
        + 2 * k * d * 4  # X and Z
        + k * 4  # delta
        + k * k * 4  # medoid-medoid distances
    )
    if backend == "gpu":
        return common + k * n * 4
    if backend == "gpu-fast":
        return common + m * n * 4 + m * d * 4 + m * 4 + m * 4 + m * 1
    if backend == "gpu-fast-star":
        return common + k * n * 4 + k * d * 4 + k * 4 + k * 4 + k * 8
    raise ValueError(f"not a GPU backend: {backend!r}")


def fig3f_space() -> ExperimentReport:
    """Fig. 3f: peak device memory vs n for the GPU variants."""
    report = ExperimentReport(
        experiment_id="fig3f",
        title="Peak device memory usage vs dataset size",
        columns=["n", "gpu", "gpu-fast", "gpu-fast*", "fast/fast* ratio"],
        paper_reference=(
            "space grows linearly in n; GPU-FAST* uses about half of "
            "GPU-FAST; GPU-PROCLUS and GPU-FAST* are similar"
        ),
    )
    for n in workloads.n_sweep():
        peaks = {}
        for name in ("gpu", "gpu-fast", "gpu-fast-star"):
            timing = time_backend(name, _workload(n), repeats=1)
            peaks[name] = timing.peak_bytes
        report.add_row(
            n,
            f"{peaks['gpu'] / 1024**2:8.2f} MiB",
            f"{peaks['gpu-fast'] / 1024**2:8.2f} MiB",
            f"{peaks['gpu-fast-star'] / 1024**2:8.2f} MiB",
            f"{peaks['gpu-fast'] / peaks['gpu-fast-star']:.2f}",
        )
        report.key_numbers["fast_over_fast_star"] = round(
            peaks["gpu-fast"] / peaks["gpu-fast-star"], 2
        )
    return report


def fig3g_realworld() -> ExperimentReport:
    """Fig. 3g: 9-setting studies on the real-world datasets."""
    report = ExperimentReport(
        experiment_id="fig3g",
        title="Multi-parameter study on real-world datasets",
        columns=["dataset", "n", "d", "proclus", "gpu-fast (mp3)", "speedup"],
        paper_reference=(
            "similar speedups as on synthetic data; 5490x on sky 5x5; "
            "speedup greatest for large datasets"
        ),
    )
    grid = ParameterGrid(ks=(8, 6, 4), ls=(5, 4, 3), base=ProclusParams(a=20, b=4))
    best = 0.0
    for name in workloads.realworld_names():
        dataset = load_dataset(name, seed=0)
        n, d = REAL_WORLD_SIZES[name]
        data = minmax_normalize(dataset.data)

        def factory(seed: int, _dataset=dataset):
            return _dataset

        base = time_parameter_study(
            "proclus", factory, grid=grid, level=0, repeats=1
        ).modeled_seconds
        fast = time_parameter_study(
            "gpu-fast", factory, grid=grid, level=ReuseLevel.WARM_START, repeats=1
        ).modeled_seconds
        speedup = base / fast
        best = max(best, speedup)
        report.add_row(
            name, n, d, format_seconds(base), format_seconds(fast),
            f"{speedup:.0f}x",
        )
    report.key_numbers["best_realworld_speedup"] = round(best)
    return report


def sec53_multiparam_levels() -> ExperimentReport:
    """Section 5.3: speedup contribution of multi-param levels 1-3."""
    report = ExperimentReport(
        experiment_id="sec53",
        title="Reuse levels vs one-setting-at-a-time GPU-FAST-PROCLUS",
        columns=["level", "strategy", "avg time/combo", "speedup vs level 0"],
        paper_reference=(
            "multi-param 1 ~1.4x, multi-param 2 ~1.6x, multi-param 3 ~2.3x "
            "vs GPU-FAST-PROCLUS run one setting at a time"
        ),
    )
    # The reuse gains need the paper's dataset scale to show: the Dist/H
    # savings are proportional to n while the per-setting launch
    # overheads are not.
    n = workloads.default_n() * 4
    reps = workloads.repeats()
    grid = ParameterGrid()
    labels = {
        ReuseLevel.NONE: "one setting at a time",
        ReuseLevel.PARTIAL_RESULTS: "reuse partial computations",
        ReuseLevel.GREEDY: "+ reuse greedy picking",
        ReuseLevel.WARM_START: "+ reuse previous best medoids",
    }
    base = None
    for level in ReuseLevel:
        timing = time_parameter_study(
            "gpu-fast", _workload(n), grid=grid, level=level, repeats=reps
        )
        if base is None:
            base = timing.modeled_seconds
        speedup = base / timing.modeled_seconds
        report.add_row(
            int(level),
            labels[level],
            format_seconds(timing.modeled_seconds),
            f"{speedup:.2f}x",
        )
        report.key_numbers[f"level{int(level)}_speedup"] = round(speedup, 2)
    return report


def sec54_utilization() -> ExperimentReport:
    """Section 5.4: occupancy / memory throughput of key kernels."""
    report = ExperimentReport(
        experiment_id="sec54",
        title="Kernel utilization on the GTX 1660 Ti (Nsight-style)",
        columns=[
            "kernel",
            "config",
            "theoretical occ",
            "achieved occ",
            "mem throughput",
            "paper (theo/achieved/mem)",
        ],
        paper_reference=(
            "EvaluateCluster: 100.00/99.99/86.54 at 4,096,000 pts, "
            "78.12/77.98/50.06 at 8,000 pts; the k x k delta kernel: "
            "50.00/3.12/1.64"
        ),
    )
    spec = GTX_1660_TI
    model = GpuModel(spec)
    cases = [
        # (label, grid blocks, threads, bytes, paper string)
        ("EvaluateCluster n=4,096,000", 50, 1024,
         2 * 4_096_000 * 5 * 4, "100.00 / 99.99 / 86.54"),
        ("EvaluateCluster n=8,000", 50, 800,
         2 * 8_000 * 5 * 4, "78.12 / 77.98 / 50.06"),
        ("ComputeL delta (k x k)", 10, 10, 10 * 10 * 4, "50.00 / 3.12 / 1.64"),
    ]
    for label, blocks, threads, gbytes, paper in cases:
        occ = occupancy_report(spec, blocks, threads)
        launch = KernelLaunch(
            name=label, phase="bench", grid_blocks=blocks,
            threads_per_block=threads, gmem_bytes=gbytes,
            flops=gbytes, atomic_ops=0, ipc=0.25,
        )
        seconds = model.launch_time(launch)
        mem_pct = gbytes / seconds / spec.mem_bandwidth_bytes_per_s * 100.0
        theo, achieved = occ.as_percentages()
        report.add_row(
            label,
            f"{blocks}x{threads}",
            f"{theo:.2f}%",
            f"{achieved:.2f}%",
            f"{mem_pct:.2f}%",
            paper,
        )
        report.key_numbers[label] = (theo, achieved)
    return report
