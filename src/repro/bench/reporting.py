"""Report structure, table rendering and CSV export for the harness."""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["ExperimentReport", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Human-scale time formatting (us / ms / s)."""
    if seconds >= 1.0:
        return f"{seconds:9.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.1f} us"


@dataclass(slots=True)
class ExperimentReport:
    """One reproduced figure/table: data rows plus paper comparison."""

    experiment_id: str  #: e.g. "fig2ab"
    title: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    #: Free-form notes comparing against the paper's reported numbers.
    paper_reference: str = ""
    #: Headline numbers for machine consumption (benchmark extra_info).
    key_numbers: dict[str, Any] = field(default_factory=dict)
    #: Optional numeric series for plotting: name -> (xs, ys).
    series: dict[str, tuple[list, list]] = field(default_factory=dict)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def render(self) -> str:
        """Render the report as an aligned text table with notes."""
        cells = [[str(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[c]), *(len(row[c]) for row in cells))
            if cells
            else len(self.columns[c])
            for c in range(len(self.columns))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(
            "  ".join(col.ljust(w) for col, w in zip(self.columns, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        if self.paper_reference:
            lines.append("")
            lines.append("paper: " + self.paper_reference)
        if self.key_numbers:
            lines.append(
                "key: "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.key_numbers.items()))
            )
        return "\n".join(lines)

    def add_series(self, name: str, x: Any, y: float) -> None:
        """Append one (x, y) point to the named plot series."""
        xs, ys = self.series.setdefault(name, ([], []))
        xs.append(x)
        ys.append(float(y))

    def render_plot(self, log: bool = True) -> str:
        """Render the numeric series as an ASCII chart (log-log default)."""
        from ..viz.ascii import line_chart, log_line_chart

        if not self.series:
            return "(no plot series recorded for this experiment)"
        # All series must share x values; use the first series' xs.
        xs = next(iter(self.series.values()))[0]
        data = {name: ys for name, (sx, ys) in self.series.items() if sx == xs}
        chart = log_line_chart if log else line_chart
        try:
            return chart(xs, data, x_label=self.columns[0] + (" (log)" if log else ""))
        except ValueError:
            return line_chart(xs, data, x_label=self.columns[0])

    def to_csv(self, path: str | Path) -> Path:
        """Write the rows as CSV (one header line, then the data)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            writer.writerows(self.rows)
        return path

    def to_json(self, path: str | Path) -> Path:
        """Write the full report (rows, notes, key numbers) as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": self.columns,
            "rows": [list(row) for row in self.rows],
            "paper_reference": self.paper_reference,
            "key_numbers": {str(k): v for k, v in self.key_numbers.items()},
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
        return path
