"""The paper's reported numbers, as structured data.

A single authoritative place for every quantitative statement the paper
makes, so the claims registry, the experiment reports, and the
documentation all reference the same values (and so a reader can grep
where each number is used).  Values are transcribed from the paper text
verbatim; see ``EXPERIMENTS.md`` for the comparison against this
reproduction's measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PaperNumber",
    "PAPER_NUMBERS",
    "DEFAULT_PARAMETERS",
    "DEFAULT_SYNTHETIC",
    "REAL_WORLD_DATASETS",
    "HARDWARE",
    "lookup",
]


@dataclass(frozen=True, slots=True)
class PaperNumber:
    """One reported value with its provenance."""

    key: str
    value: float | tuple
    unit: str
    source: str
    quote: str  #: the sentence (abridged) the value comes from


#: Section 5, "Algorithm parameters".
DEFAULT_PARAMETERS = {
    "k": 10, "l": 5, "A": 100, "B": 10, "minDev": 0.7, "itrPat": 5,
}

#: Section 5, "Synthetic data".
DEFAULT_SYNTHETIC = {
    "n": 64_000, "d": 15, "clusters": 10, "subspace_dims": 5,
    "std": 5.0, "value_range": (0, 100),
}

#: Section 5, "Real-world data": name -> (n, d).
REAL_WORLD_DATASETS = {
    "glass": (214, 9),
    "vowel": (990, 10),
    "pendigits": (7_494, 16),
    "sky-1x1": (30_390, 17),
    "sky-2x2": (133_095, 17),
    "sky-5x5": (934_073, 17),
}

#: Section 5, first paragraph.
HARDWARE = {
    "small": ("Intel Core i7-9750H 2.6GHz", "GeForce GTX 1660 Ti 6GB", "16GB RAM"),
    "large": ("Intel Core i9-10940X 3.3GHz", "GeForce RTX 3090 24GB", "258GB RAM"),
}

PAPER_NUMBERS: tuple[PaperNumber, ...] = (
    PaperNumber(
        "overall-speedup", 1000.0, "x", "Abstract",
        "we obtain 3 orders of magnitude speedup compared to PROCLUS",
    ),
    PaperNumber(
        "gpu-parallelization-speedup", 2000.0, "x", "Sec. 5.1",
        "the GPU-parallelization of each strategy provides an additional 2,000x speedup",
    ),
    PaperNumber(
        "algorithmic-speedup-band", (1.2, 1.4), "x", "Sec. 5.1 / Fig. 1",
        "the algorithmic strategies provide a factor of 1.2 to 1.4x speedup",
    ),
    PaperNumber(
        "fast-star-slowdown-band", (1.05, 1.1), "x", "Sec. 5.1 / Fig. 1",
        "for FAST* compared to FAST, we see approximately 1.05 to 1.1x slowdown",
    ),
    PaperNumber(
        "multicore-speedup", 6.0, "x", "Sec. 5.1",
        "the multi-core CPU-version provides up to 6x speedup",
    ),
    PaperNumber(
        "real-time-budget", 0.1, "s", "Sec. 1 / 5.1",
        "executing data analysis within 100ms ... for even 1,000,000 data points",
    ),
    PaperNumber(
        "dim-speedup-band", (896.0, 1265.0), "x", "Sec. 5.1 / Fig. 2c-2d",
        "the factor of speedup is higher for a lower number of dimensions, "
        "ranging from 896 to 1,265x",
    ),
    PaperNumber(
        "param-sweep-speedup", 1100.0, "x", "Sec. 5.2",
        "the factor of speedup remains relatively constant at around 1100x",
    ),
    PaperNumber(
        "multiparam-speedup", 7000.0, "x", "Sec. 5.3 / Fig. 3",
        "GPU-FAST-PROCLUS provides up to around 7000x speedup w.r.t PROCLUS",
    ),
    PaperNumber(
        "multiparam-level-speedups", (1.4, 1.6, 2.3), "x", "Sec. 5.3",
        "reuse of partial computations ~1.4x, also greedy picking ~1.6x, "
        "also previous best medoids ~2.3x",
    ),
    PaperNumber(
        "multiparam-max-points", 8_000_000, "points", "Sec. 5.3 / Fig. 3e",
        "run on more than 8,000,000 points ... average execution time never "
        "exceeds a second",
    ),
    PaperNumber(
        "oom-free-memory", 4.2, "GB", "Sec. 5.3",
        "space becomes the limiting factor, exceeding the 4.2 GB of free "
        "memory on our relatively small GPU",
    ),
    PaperNumber(
        "evaluate-occupancy-4m", (100.00, 99.99, 86.54), "%", "Sec. 5.4",
        "theoretical occupancy of 100.00%, achieved occupancy of 99.99%, "
        "and memory throughput of 86.54% at 4,096,000 points",
    ),
    PaperNumber(
        "evaluate-occupancy-8k", (78.12, 77.98, 50.06), "%", "Sec. 5.4",
        "reducing the dataset size to 8,000 points reduces the utilization",
    ),
    PaperNumber(
        "delta-kernel-occupancy", (50.00, 3.12, 1.64), "%", "Sec. 5.4",
        "this kernel has a theoretical occupancy of 50.00%, achieved "
        "occupancy of 3.12%, and memory throughput of 1.64%",
    ),
    PaperNumber(
        "sky5x5-speedup", 5490.0, "x", "Sec. 5.5 / Fig. 3g",
        "GPU-FAST-PROCLUS achieves 5490x speedup compared to PROCLUS on the "
        "sky 5x5 dataset",
    ),
    PaperNumber(
        "fast-star-space-ratio", 0.5, "ratio", "Sec. 5.1 / Fig. 3f",
        "the space usage of GPU-FAST*-PROCLUS is approximately half of that "
        "of GPU-FAST-PROCLUS",
    ),
)

_INDEX = {number.key: number for number in PAPER_NUMBERS}


def lookup(key: str) -> PaperNumber:
    """Fetch a reported number by key; raises ``KeyError`` with the
    available keys when unknown."""
    try:
        return _INDEX[key]
    except KeyError:
        raise KeyError(
            f"unknown paper number {key!r}; available: {sorted(_INDEX)}"
        ) from None
