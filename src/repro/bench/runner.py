"""Batch experiment runner: regenerate everything into a results directory.

``python -m repro bench all --out results/`` (or
:func:`run_all_experiments`) executes every experiment of the paper,
writes each report as CSV + JSON, and produces a ``SUMMARY.md`` that
mirrors the structure of ``EXPERIMENTS.md`` with freshly measured
numbers — a one-command re-audit of the reproduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from . import figures
from .reporting import ExperimentReport

__all__ = ["ExperimentRun", "ALL_EXPERIMENTS", "run_all_experiments", "write_summary"]

#: Every experiment, in the paper's order.
ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentReport]] = {
    "fig1": figures.fig1_strategy_speedup,
    "fig2ab": figures.fig2ab_scale_n,
    "fig2cd": figures.fig2cd_scale_d,
    "fig2e": figures.fig2e_data_clusters,
    "fig2f": figures.fig2f_stddev,
    "fig2gk": figures.fig2gk_params,
    "fig3ae": figures.fig3ae_multiparam_scale,
    "fig3f": figures.fig3f_space,
    "fig3g": figures.fig3g_realworld,
    "sec53": figures.sec53_multiparam_levels,
    "sec54": figures.sec54_utilization,
    "ablation": figures.ablation_strategies,
}


@dataclass(slots=True)
class ExperimentRun:
    """One executed experiment with its artifacts."""

    experiment_id: str
    report: ExperimentReport
    wall_seconds: float
    csv_path: Path | None = None
    json_path: Path | None = None


def run_all_experiments(
    out_dir: str | Path | None = None,
    experiments: dict[str, Callable[[], ExperimentReport]] | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[ExperimentRun]:
    """Execute experiments (all by default), optionally writing artifacts.

    Parameters
    ----------
    out_dir:
        Directory for per-experiment CSV/JSON plus ``SUMMARY.md``;
        nothing is written when omitted.
    experiments:
        Subset to run (id -> function); all when omitted.
    progress:
        Called with a status line before each experiment (e.g. ``print``).
    """
    experiments = experiments if experiments is not None else ALL_EXPERIMENTS
    out = Path(out_dir) if out_dir is not None else None
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)

    runs: list[ExperimentRun] = []
    for exp_id, fn in experiments.items():
        if progress is not None:
            progress(f"running {exp_id} ...")
        started = time.perf_counter()
        report = fn()
        run = ExperimentRun(
            experiment_id=exp_id,
            report=report,
            wall_seconds=time.perf_counter() - started,
        )
        if out is not None:
            run.csv_path = report.to_csv(out / f"{exp_id}.csv")
            run.json_path = report.to_json(out / f"{exp_id}.json")
        runs.append(run)
    if out is not None:
        write_summary(runs, out / "SUMMARY.md")
    return runs


def write_summary(runs: list[ExperimentRun], path: str | Path) -> Path:
    """Write a markdown summary of all executed experiments."""
    path = Path(path)
    lines = [
        "# Reproduction summary",
        "",
        "Freshly measured results for every experiment of the paper's",
        "Section 5 (see `EXPERIMENTS.md` for the paper-vs-measured",
        "discussion and `DESIGN.md` for the modeling substitutions).",
        "",
    ]
    total = sum(r.wall_seconds for r in runs)
    lines.append(
        f"{len(runs)} experiments, {total:.1f} s wall time.\n"
    )
    for run in runs:
        lines.append(f"## {run.experiment_id}: {run.report.title}")
        lines.append("")
        lines.append("```")
        lines.append(run.report.render())
        lines.append("```")
        lines.append("")
    path.write_text("\n".join(lines))
    return path
