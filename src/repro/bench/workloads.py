"""Benchmark workload scales.

``REPRO_BENCH_SCALE`` selects between the quick default sweeps
(``small``, minutes on a laptop, shapes preserved) and the paper's full
sweeps (``paper``): synthetic sizes to 2^20 for single-setting
experiments and 2^23 for the multi-parameter study, plus the large sky
extracts.
"""

from __future__ import annotations

import os

__all__ = [
    "bench_scale",
    "repeats",
    "n_sweep",
    "multiparam_n_sweep",
    "d_sweep",
    "data_cluster_sweep",
    "stddev_sweep",
    "realworld_names",
    "default_n",
]

#: Default dataset size for non-scaling experiments.  The paper uses
#: 64,000; the small scale uses 16,384 to keep the suite quick.
_SMALL_DEFAULT_N = 16_384
_PAPER_DEFAULT_N = 64_000


def bench_scale() -> str:
    """Current scale: ``"small"`` (default) or ``"paper"``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if scale not in ("small", "paper"):
        raise ValueError(
            f"REPRO_BENCH_SCALE must be 'small' or 'paper', got {scale!r}"
        )
    return scale


def _paper() -> bool:
    return bench_scale() == "paper"


def default_n() -> int:
    return _PAPER_DEFAULT_N if _paper() else _SMALL_DEFAULT_N


def repeats() -> int:
    """Runs per configuration (paper: averages of 10 runs)."""
    return 10 if _paper() else 2


def n_sweep() -> list[int]:
    """Dataset sizes for Figs. 2a-2b (paper: 2^9 ... 2^20)."""
    if _paper():
        return [2**e for e in range(9, 21)]
    return [2**e for e in (9, 11, 13, 15)]


def multiparam_n_sweep() -> list[int]:
    """Dataset sizes for Figs. 3a-3e (paper: up to 2^23 ~ 8.4M)."""
    if _paper():
        return [2**e for e in range(9, 24)]
    return [2**e for e in (11, 13, 15)]


def d_sweep() -> list[int]:
    """Dimensionalities for Figs. 2c-2d."""
    if _paper():
        return [5, 10, 15, 20, 25, 30]
    return [5, 10, 15, 20]


def data_cluster_sweep() -> list[int]:
    """Number of generated clusters for Fig. 2e."""
    return [2, 5, 10, 20, 40] if _paper() else [2, 5, 10, 20]


def stddev_sweep() -> list[float]:
    """Cluster standard deviations for Fig. 2f."""
    return [1.0, 2.5, 5.0, 10.0, 20.0] if _paper() else [1.0, 5.0, 15.0]


def realworld_names() -> list[str]:
    """Datasets for Fig. 3g (the big sky extracts only at paper scale)."""
    if _paper():
        return ["glass", "vowel", "pendigits", "sky-1x1", "sky-2x2", "sky-5x5"]
    return ["glass", "vowel", "pendigits", "sky-1x1"]

