"""Postmortem forensics: load, validate, analyze, and replay bundles.

The consumer side of :mod:`repro.obs.recorder`.  A postmortem bundle
(:data:`~repro.obs.recorder.POSTMORTEM_SCHEMA`) is self-contained: it
carries the failing job's dataset (or at least its fingerprint), exact
parameters, seed or mid-stream RNG state, retry policy, engine kwargs,
and the active fault schedule — enough to re-execute the run without
the process that crashed.

* :func:`load_bundle` / :func:`validate_postmortem` — read + schema-check.
* :func:`analyze_bundle` — the forensic report behind ``repro
  postmortem``: failure echo, suspect fault/kernel/device, resilience
  trail, counter triage (via :mod:`repro.obs.explain`), and
  collective-straggler analysis for fleet runs.
* :func:`replay_bundle` — deterministic re-execution from the bundle
  alone; asserts the recorded error class and resilience event log
  reproduce (modulo wall-clock fields), or — for failures recorded
  without an error, like determinism violations — that the solo result
  digest matches the recorded reference.
"""

from __future__ import annotations

import base64
import hashlib
import json
from pathlib import Path
from typing import Any

import numpy as np

from ..exceptions import PostmortemError
from .recorder import POSTMORTEM_SCHEMA, RECORDER_STREAMS

__all__ = [
    "POSTMORTEM_REPORT_SCHEMA",
    "WALL_CLOCK_EVENT_FIELDS",
    "load_bundle",
    "validate_postmortem",
    "analyze_bundle",
    "replay_bundle",
    "result_digest",
    "comparable_events",
]

#: Schema tag of the analysis report (``repro postmortem --json``).
POSTMORTEM_REPORT_SCHEMA = "repro.postmortem_report/1"

#: Resilience-event fields stamped from the host wall clock; excluded
#: from the replay determinism contract (see ``ResilientRunner``).
WALL_CLOCK_EVENT_FIELDS = ("recovery_s",)


# ----------------------------------------------------------------------
# Loading + validation
# ----------------------------------------------------------------------
def load_bundle(path: "str | Path") -> dict[str, Any]:
    """Load a postmortem bundle from a file (or newest in a directory).

    Raises :class:`~repro.exceptions.PostmortemError` when the path does
    not exist, holds no bundle, or is not valid JSON.
    """
    path = Path(path)
    if path.is_dir():
        candidates = sorted(path.glob("postmortem-*.json"))
        if not candidates:
            raise PostmortemError(
                f"no postmortem-*.json bundles under {path}"
            )
        path = candidates[-1]
    try:
        text = path.read_text()
    except OSError as error:
        raise PostmortemError(f"cannot read bundle {path}: {error}") from error
    try:
        bundle = json.loads(text)
    except json.JSONDecodeError as error:
        raise PostmortemError(
            f"bundle {path} is not valid JSON: {error}"
        ) from error
    if not isinstance(bundle, dict):
        raise PostmortemError(f"bundle {path} must be a JSON object")
    bundle.setdefault("_path", str(path))
    return bundle


def validate_postmortem(bundle: Any) -> list[str]:
    """Structurally validate a ``repro.postmortem/1`` bundle.

    Returns a list of problems (empty when clean): the shared report
    envelope, the failure record, the ring section (every stream
    present, within capacity, with consistent recorded/dropped counts),
    and — when present — the replayable job context's shape.
    """
    from .export import validate_bench_report

    problems = validate_bench_report(bundle, POSTMORTEM_SCHEMA)
    if problems:
        return problems

    failure = bundle.get("failure")
    if not isinstance(failure, dict) or not failure.get("reason"):
        problems.append("'failure' must be an object with a 'reason'")
    elif not isinstance(failure.get("events"), list):
        problems.append("'failure.events' must be a list")

    rings = bundle.get("rings")
    if not isinstance(rings, dict):
        problems.append("'rings' must be an object")
        return problems
    capacity = rings.get("capacity")
    if not isinstance(capacity, int) or capacity < 1:
        problems.append("'rings.capacity' must be a positive int")
        capacity = None
    streams = rings.get("streams")
    recorded = rings.get("recorded")
    dropped = rings.get("dropped")
    if not isinstance(streams, dict):
        problems.append("'rings.streams' must be an object")
        return problems
    for stream in RECORDER_STREAMS:
        ring = streams.get(stream)
        if not isinstance(ring, list):
            problems.append(f"'rings.streams.{stream}' must be a list")
            continue
        if capacity is not None and len(ring) > capacity:
            problems.append(
                f"'rings.streams.{stream}' holds {len(ring)} records, "
                f"over the declared capacity {capacity}"
            )
        total = (recorded or {}).get(stream)
        lost = (dropped or {}).get(stream)
        if not isinstance(total, int) or not isinstance(lost, int):
            problems.append(
                f"'rings' must count recorded/dropped for {stream!r}"
            )
        elif total != len(ring) + lost:
            problems.append(
                f"stream {stream!r}: recorded={total} != "
                f"kept={len(ring)} + dropped={lost}"
            )

    job = bundle.get("job")
    if job is not None:
        if not isinstance(job, dict):
            problems.append("'job' must be an object or null")
        else:
            if not isinstance(job.get("backend"), str):
                problems.append("'job.backend' must be a string")
            seed = job.get("seed")
            if (
                not isinstance(seed, dict)
                or seed.get("kind") not in ("int", "state")
            ):
                problems.append(
                    "'job.seed' must be {kind: 'int'|'state', ...}"
                )

    dataset = bundle.get("dataset")
    if dataset is not None:
        if not isinstance(dataset, dict) or not dataset.get("fingerprint"):
            problems.append(
                "'dataset' must be an object with a 'fingerprint'"
            )

    schedule = bundle.get("fault_schedule")
    if schedule is not None:
        if (
            not isinstance(schedule, dict)
            or not isinstance(schedule.get("specs"), list)
            or not isinstance(schedule.get("seed"), int)
        ):
            problems.append(
                "'fault_schedule' must be {specs: [...], seed: int} or null"
            )
    return problems


# ----------------------------------------------------------------------
# Result digests (the "solo bits")
# ----------------------------------------------------------------------
def result_digest(result: Any) -> str:
    """Canonical digest of a clustering result's deterministic bits.

    Covers labels, medoids, per-cluster subspaces, cost, refined cost,
    and iteration count — the quantities the determinism contract
    compares.  Two runs are bit-identical iff their digests match.
    """
    hasher = hashlib.sha256()
    hasher.update(np.ascontiguousarray(result.labels).tobytes())
    hasher.update(np.ascontiguousarray(result.medoids).tobytes())
    hasher.update(repr(tuple(tuple(d) for d in result.dimensions)).encode())
    hasher.update(
        f"{result.cost!r}|{result.refined_cost!r}|{result.iterations}".encode()
    )
    return hasher.hexdigest()


def comparable_events(events: "list[dict[str, Any]]") -> list[dict[str, Any]]:
    """Resilience events with wall-clock fields zeroed (replay contract)."""
    cleaned = []
    for event in events:
        record = dict(event)
        for field in WALL_CLOCK_EVENT_FIELDS:
            record[field] = 0.0
        record.pop("corr", None)
        cleaned.append(record)
    return cleaned


# ----------------------------------------------------------------------
# Forensic analysis
# ----------------------------------------------------------------------
def _device_of(site: str) -> "str | None":
    tag = site.rsplit("@", 1)[-1] if "@" in site else ""
    return tag if tag.startswith("dev") else None


def _straggler_analysis(
    collectives: "list[dict[str, Any]]",
) -> "dict[str, Any] | None":
    """Per-device collective wait totals; names the straggler.

    In the barrier model every non-straggler shard *waits* for the
    slowest one, so the device with the **least** recorded wait is the
    straggler — it made everyone else wait.
    """
    waits: dict[str, float] = {}
    steps: dict[str, int] = {}
    for event in collectives:
        device = _device_of(str(event.get("name", "")))
        if device is None:
            continue
        waits[device] = waits.get(device, 0.0) + float(
            event.get("duration", 0.0)
        )
        steps[device] = steps.get(device, 0) + 1
    if len(waits) < 2:
        return None
    straggler = min(waits, key=lambda device: (waits[device], device))
    return {
        "wait_seconds": {
            device: waits[device] for device in sorted(waits)
        },
        "steps": {device: steps[device] for device in sorted(steps)},
        "straggler": straggler,
    }


def _counter_triage(counters: "list[dict[str, Any]]") -> list[str]:
    """Triage lines over the ring's final counter values.

    Reuses the ``obs.explain`` movers machinery: the ring's last sample
    per track against a zero baseline names the counters that moved
    most by the time of the failure.
    """
    from .explain.diff import triage_lines, triage_record

    final: dict[str, float] = {}
    for sample in counters:
        track = str(sample.get("track", ""))
        if track:
            final[track] = float(sample.get("value", 0.0))
    if not final:
        return []
    triage = triage_record({"counters": {}}, {"counters": final})
    return triage_lines(triage)


def analyze_bundle(bundle: dict[str, Any]) -> dict[str, Any]:
    """Forensic report (``repro.postmortem_report/1``) for one bundle.

    Reconstructs the failure story from the rings: the failure record,
    the suspect fault injection / kernel / device, the resilience trail
    (what recovery was attempted before the run died), counter triage,
    collective straggler analysis, and the health snapshot's failing
    SLOs.
    """
    from .export import report_envelope

    problems = validate_postmortem(bundle)
    if problems:
        raise PostmortemError(
            "bundle failed validation: " + "; ".join(problems)
        )
    streams = bundle["rings"]["streams"]
    failure = bundle["failure"]

    suspects: dict[str, Any] = {}
    faults = streams.get("faults", [])
    if faults:
        last = faults[-1]
        suspects["fault"] = {
            "kind": last.get("kind"),
            "site": last.get("site"),
            "operation": last.get("operation"),
            "spec": last.get("spec"),
        }
        device = _device_of(str(last.get("site", "")))
        if device is not None:
            suspects["device"] = device
    kernels = streams.get("kernels", [])
    if kernels:
        last = kernels[-1]
        suspects["kernel"] = {
            "name": last.get("name"),
            "pipeline": last.get("pipeline"),
            "phase": last.get("phase"),
        }
    for event in reversed(streams.get("serve", [])):
        if event.get("kind") == "device_down":
            suspects.setdefault("device", event.get("detail"))
            break

    trail = [
        {
            "kind": event.get("kind"),
            "rung": event.get("rung"),
            "to_rung": event.get("to_rung"),
            "error_type": event.get("error_type"),
            "detail": event.get("detail"),
        }
        for event in streams.get("resilience", [])
    ]

    health = bundle.get("health")
    failing_slos: list[str] = []
    if isinstance(health, dict):
        for slo in health.get("slos", []) or []:
            if isinstance(slo, dict) and not slo.get("ok", True):
                failing_slos.append(str(slo.get("name")))

    return {
        **report_envelope(POSTMORTEM_REPORT_SCHEMA),
        "bundle": bundle.get("_path", ""),
        "reason": failure.get("reason", ""),
        "failure": {
            "error_type": failure.get("error_type", ""),
            "last_error_type": failure.get("last_error_type", ""),
            "message": failure.get("message", ""),
            "detail": failure.get("detail", ""),
        },
        "suspects": suspects,
        "resilience_trail": trail,
        "counter_triage": _counter_triage(streams.get("counters", [])),
        "stragglers": _straggler_analysis(streams.get("collectives", [])),
        "failing_slos": failing_slos,
        "dropped": dict(bundle["rings"].get("dropped", {})),
        "replayable": bool(
            bundle.get("job")
            and (bundle.get("dataset") or {}).get("data_b64")
        ),
    }


# ----------------------------------------------------------------------
# Deterministic replay
# ----------------------------------------------------------------------
def _rebuild_dataset(bundle: dict[str, Any]) -> np.ndarray:
    dataset = bundle.get("dataset")
    if not isinstance(dataset, dict):
        raise PostmortemError("bundle has no dataset section to replay")
    payload = dataset.get("data_b64")
    if not payload:
        raise PostmortemError(
            "dataset payload was not embedded (over the size cap); "
            f"replay needs the original data with fingerprint "
            f"{dataset.get('fingerprint', '?')[:12]}"
        )
    try:
        array = np.frombuffer(
            base64.b64decode(payload), dtype=np.dtype(dataset["dtype"])
        ).reshape(tuple(dataset["shape"]))
    except (ValueError, TypeError, KeyError) as error:
        raise PostmortemError(
            f"embedded dataset payload is corrupt: {error}"
        ) from error
    from ..data.fingerprint import dataset_fingerprint

    actual = dataset_fingerprint(array)
    if actual != dataset["fingerprint"]:
        raise PostmortemError(
            f"embedded dataset fingerprint mismatch: bundle says "
            f"{dataset['fingerprint'][:12]}, payload hashes to {actual[:12]}"
        )
    return array


def _rebuild_seed(job: dict[str, Any]) -> Any:
    from ..rng import RandomSource

    seed = job.get("seed") or {"kind": "int", "value": 0}
    if seed.get("kind") == "state":
        return RandomSource.from_state(seed["state"])
    return seed.get("value")


def _rebuild_policy(job: dict[str, Any]) -> Any:
    from ..resilience.policy import RetryPolicy

    policy = job.get("policy")
    if not policy:
        return RetryPolicy()
    return RetryPolicy(
        max_retries=int(policy.get("max_retries", 3)),
        backoff_base=float(policy.get("backoff_base", 0.0)),
        allow_degraded=bool(policy.get("allow_degraded", True)),
        max_reshards=policy.get("max_reshards"),
    )


def _rebuild_engine_kwargs(job: dict[str, Any]) -> dict[str, Any]:
    from ..fleet import Fleet
    from ..hardware.specs import GTX_1660_TI, RTX_3090

    by_name = {spec.name: spec for spec in (GTX_1660_TI, RTX_3090)}

    def resolve_spec(name: str) -> Any:
        if name not in by_name:
            raise PostmortemError(
                f"bundle references unknown GPU spec {name!r}"
            )
        return by_name[name]

    rebuilt: dict[str, Any] = {}
    for key, value in (job.get("engine_kwargs") or {}).items():
        if isinstance(value, dict) and "fleet_specs" in value:
            rebuilt[key] = Fleet(
                specs=tuple(
                    resolve_spec(name) for name in value["fleet_specs"]
                )
            )
        elif isinstance(value, dict) and "gpu_spec" in value:
            rebuilt[key] = resolve_spec(value["gpu_spec"])
        elif isinstance(value, dict) and "unserializable" in value:
            continue  # dropped at record time; nothing to rebuild
        else:
            rebuilt[key] = value
    return rebuilt


def replay_bundle(bundle: dict[str, Any]) -> dict[str, Any]:
    """Re-execute the recorded job from the bundle alone; compare.

    Rebuilds the dataset, parameters, seed/RNG state, retry policy,
    engine kwargs, and fault schedule, then runs the resilient runner
    exactly as the crashed process did.  The verdict:

    * failure recorded **with** an error class — replay must raise the
      same exception type (and, for exhaustion, the same last error
      class) with a bit-identical resilience event log, modulo the
      wall-clock fields in :data:`WALL_CLOCK_EVENT_FIELDS`;
    * failure recorded **without** one (determinism / chaos-contract
      violations) — replay must complete and its result digest must
      equal the bundle's recorded reference digest (the solo bits).

    Returns a plain-data report; ``reproduced`` is the verdict.
    """
    from ..params import ProclusParams
    from ..resilience.faults import FaultInjector, use_injector
    from ..resilience.runner import ResilientRunner

    problems = validate_postmortem(bundle)
    if problems:
        raise PostmortemError(
            "bundle failed validation: " + "; ".join(problems)
        )
    job = bundle.get("job")
    if not job:
        raise PostmortemError(
            "bundle has no replayable job context (the recorder never "
            "saw a fit; nothing to re-execute)"
        )
    data = _rebuild_dataset(bundle)
    params = (
        ProclusParams(**job["params"]) if job.get("params") else None
    )
    seed = _rebuild_seed(job)
    policy = _rebuild_policy(job)
    engine_kwargs = _rebuild_engine_kwargs(job)
    schedule = bundle.get("fault_schedule")
    injector = (
        FaultInjector(
            tuple(schedule["specs"]), seed=int(schedule["seed"])
        )
        if schedule and schedule.get("specs")
        else None
    )

    failure = bundle["failure"]
    expected_type = failure.get("error_type", "")
    expected_last = failure.get("last_error_type", "")
    expected_events = comparable_events(failure.get("events", []))

    report: dict[str, Any] = {
        "backend": job.get("backend", ""),
        "faults": list((schedule or {}).get("specs", [])),
        "expected_error_type": expected_type,
        "expected_last_error_type": expected_last,
        "observed_error_type": "",
        "observed_last_error_type": "",
        "events_match": None,
        "digest_match": None,
        "reference_digest": bundle.get("reference_digest"),
        "observed_digest": None,
        "reproduced": False,
        "detail": "",
    }

    runner = ResilientRunner(policy)
    error: "BaseException | None" = None
    outcome = None
    try:
        with use_injector(injector):
            outcome = runner.fit(
                data,
                backend=job.get("backend", "gpu-fast"),
                params=params,
                seed=seed,
                engine_kwargs=engine_kwargs,
            )
    except Exception as raised:  # noqa: BLE001 - verdict, not control flow
        error = raised

    if expected_type:
        if error is None:
            report["detail"] = (
                f"expected {expected_type} but the replay completed"
            )
            return report
        report["observed_error_type"] = type(error).__name__
        last = getattr(error, "last_error", None)
        report["observed_last_error_type"] = (
            type(last).__name__ if last is not None else ""
        )
        observed_events = comparable_events(
            [
                event.as_dict() if hasattr(event, "as_dict") else dict(event)
                for event in (getattr(error, "events", None) or [])
            ]
        )
        report["events_match"] = observed_events == expected_events
        report["reproduced"] = (
            report["observed_error_type"] == expected_type
            and report["observed_last_error_type"] == expected_last
            and bool(report["events_match"])
        )
        if not report["reproduced"]:
            report["detail"] = (
                f"replay raised {report['observed_error_type']}"
                f"(last={report['observed_last_error_type']}) with "
                f"{len(observed_events)} resilience events; recorded "
                f"{expected_type}(last={expected_last}) with "
                f"{len(expected_events)}"
            )
        return report

    # No recorded error class: the failure was a divergence (determinism
    # or chaos-contract violation).  Replay the run and compare digests.
    if error is not None:
        report["observed_error_type"] = type(error).__name__
        report["detail"] = (
            f"expected a completed run but the replay raised "
            f"{type(error).__name__}: {error}"
        )
        return report
    digest = result_digest(outcome.result)
    report["observed_digest"] = digest
    reference = bundle.get("reference_digest")
    if not reference:
        report["detail"] = (
            "bundle records neither an error class nor a reference "
            "digest; nothing to verify against"
        )
        return report
    report["digest_match"] = digest == reference
    report["reproduced"] = bool(report["digest_match"])
    if not report["reproduced"]:
        report["detail"] = (
            f"replay digest {digest[:12]} != recorded reference "
            f"{reference[:12]}"
        )
    return report
