"""repro.obs — unified tracing and metrics for the reproduction.

One instrumentation spine across every layer: engines open spans around
the algorithm's phases and iterations, the simulated device stamps each
kernel launch on a modeled-GPU timeline, the SIMT emulator stamps its
launches on the wall clock, and the multi-parameter driver links the
spans of settings that reuse shared work.  Exporters turn one traced
run into a Perfetto-loadable Chrome trace, JSONL telemetry records, and
(via :mod:`repro.viz.timeline`) an ASCII timeline.

Quickstart::

    from repro import proclus
    from repro.obs import Tracer, use_tracer
    from repro.obs.export import write_chrome_trace

    tracer = Tracer()
    with use_tracer(tracer):
        result = proclus(data, backend="gpu-fast", seed=0)
    write_chrome_trace(tracer, "trace.json")   # open in ui.perfetto.dev

Tracing is off by default (the ambient tracer is a disabled singleton
with near-zero overhead), so uninstrumented users pay nothing.

For failure forensics, :class:`FlightRecorder` keeps a bounded ring of
recent spans, kernels, counters, faults, and resilience/serve events,
and dumps a schema-versioned postmortem bundle on terminal failures;
:mod:`repro.obs.postmortem` reloads, validates, analyzes, and
deterministically replays those bundles (``repro postmortem``).
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import (
    NULL_TRACER,
    CounterSample,
    KernelEvent,
    Span,
    Tracer,
    current_tracer,
    set_current_tracer,
    use_tracer,
)
from .export import (
    PIPELINES,
    chrome_trace,
    kernel_pipeline,
    read_jsonl,
    report_envelope,
    run_record,
    study_record,
    validate_bench_report,
    validate_chrome_trace,
    validate_serve_report,
    write_chrome_trace,
    write_jsonl,
)
from .explain import (
    EXPLAIN_SCHEMA,
    attribute_run,
    attribution_record,
    collapsed_stacks,
    diff_attribution,
    explain_report,
    fleet_attribution,
    format_collapsed,
    speedscope_profile,
    validate_explain_report,
)
from .monitor import (
    ServiceMonitor,
    SloObjective,
    SloTracker,
    default_slos,
    load_health,
)
from .prometheus import (
    escape_label_value,
    format_labels,
    parse_labels,
    parse_prometheus_text,
    prometheus_text,
    unescape_label_value,
)
from .recorder import (
    POSTMORTEM_SCHEMA,
    RECORDER_STREAMS,
    FlightRecorder,
    current_correlation,
    current_recorder,
    new_correlation,
    set_current_recorder,
    use_correlation,
    use_recorder,
)
from .postmortem import (
    POSTMORTEM_REPORT_SCHEMA,
    analyze_bundle,
    comparable_events,
    load_bundle,
    replay_bundle,
    result_digest,
    validate_postmortem,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "KernelEvent",
    "CounterSample",
    "Tracer",
    "NULL_TRACER",
    "current_tracer",
    "set_current_tracer",
    "use_tracer",
    "PIPELINES",
    "kernel_pipeline",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "validate_serve_report",
    "validate_bench_report",
    "report_envelope",
    "run_record",
    "study_record",
    "write_jsonl",
    "read_jsonl",
    "EXPLAIN_SCHEMA",
    "attribute_run",
    "attribution_record",
    "collapsed_stacks",
    "diff_attribution",
    "explain_report",
    "fleet_attribution",
    "format_collapsed",
    "speedscope_profile",
    "validate_explain_report",
    "ServiceMonitor",
    "SloObjective",
    "SloTracker",
    "default_slos",
    "load_health",
    "prometheus_text",
    "parse_prometheus_text",
    "escape_label_value",
    "unescape_label_value",
    "format_labels",
    "parse_labels",
    "POSTMORTEM_SCHEMA",
    "RECORDER_STREAMS",
    "FlightRecorder",
    "current_recorder",
    "set_current_recorder",
    "use_recorder",
    "current_correlation",
    "new_correlation",
    "use_correlation",
    "POSTMORTEM_REPORT_SCHEMA",
    "load_bundle",
    "validate_postmortem",
    "analyze_bundle",
    "replay_bundle",
    "result_digest",
    "comparable_events",
]
