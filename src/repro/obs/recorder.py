"""Always-on flight recorder: bounded rings + postmortem crash bundles.

The black-box pattern for the clustering substrate.  A
:class:`FlightRecorder` keeps a bounded ring buffer (one
``deque(maxlen=capacity)`` per stream, O(1) memory) of the most recent

* **spans** (closed host spans, from :class:`~repro.obs.tracer.Tracer`),
* **kernels** (simulated kernel launches),
* **collectives** (fleet ``comm.*`` barrier events),
* **counters** (counter-track samples),
* **faults** (fault-injector firings),
* **resilience** (retry / degrade / reshard actions), and
* **serve** (service lifecycle events),

each stamped with the unified **correlation id** threaded end-to-end
(request -> job -> resilience rung/attempt -> kernel): the serving
layer installs ``job-<id>``, the resilient runner extends it with
``:r<rung>a<attempt>``, and every ring record written inside that
context carries it, extending the existing ``ServeEvent.span_id`` link
into the flat event streams.

Recording is passive — nothing here touches the modeled clocks, so a
run with the recorder installed produces bit-identical modeled seconds
and counters (the overhead test pins this).

On a terminal failure the recorder dumps a schema-versioned
**postmortem bundle** (:data:`POSTMORTEM_SCHEMA`): the ring contents,
the active fault schedule, the RNG state, the dataset fingerprint +
payload, the engine/policy configuration, the failure record, a health
snapshot, and the environment — everything
:func:`repro.obs.postmortem.replay_bundle` needs to re-execute the job
deterministically from the bundle alone.

Installation is ambient (a :class:`contextvars.ContextVar`, mirroring
:mod:`repro.obs.tracer`): layers call :func:`current_recorder` and do
nothing when none is installed.  The ``REPRO_FLIGHT_RECORDER``
environment variable makes the CLI install one for any command.
"""

from __future__ import annotations

import base64
import hashlib
import itertools
import json
import platform
import sys
import threading
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from ..exceptions import ParameterError

__all__ = [
    "POSTMORTEM_SCHEMA",
    "RECORDER_STREAMS",
    "FlightRecorder",
    "current_recorder",
    "set_current_recorder",
    "use_recorder",
    "current_correlation",
    "new_correlation",
    "use_correlation",
]

#: Postmortem bundle schema identifier (bump on incompatible changes).
POSTMORTEM_SCHEMA = "repro.postmortem/1"

#: Every ring stream the recorder keeps, in dump order.
RECORDER_STREAMS = (
    "spans",
    "kernels",
    "collectives",
    "counters",
    "faults",
    "resilience",
    "serve",
)

#: Datasets larger than this are recorded by fingerprint only (the
#: bundle stays shippable; replay then needs the original data file).
DEFAULT_MAX_DATASET_BYTES = 8 << 20


# ----------------------------------------------------------------------
# Correlation ids
# ----------------------------------------------------------------------
_correlation: ContextVar[str | None] = ContextVar(
    "repro_correlation_id", default=None
)
_corr_counter = itertools.count(1)


def current_correlation() -> str | None:
    """The ambient correlation id (``None`` outside any context)."""
    return _correlation.get()


def new_correlation(prefix: str = "corr") -> str:
    """Mint a fresh process-unique correlation id."""
    return f"{prefix}-{next(_corr_counter)}"


@contextmanager
def use_correlation(corr: str) -> Iterator[str]:
    """Install ``corr`` as the ambient correlation id for a block.

    Nested uses replace the id for the inner block only; layers that
    want hierarchy extend the parent id textually (the resilient
    runner's ``<parent>:r<rung>a<attempt>``).
    """
    token = _correlation.set(corr)
    try:
        yield corr
    finally:
        _correlation.reset(token)


# ----------------------------------------------------------------------
# JSON sanitization
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-serializable plain data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    return str(value)


def _digest_text(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class FlightRecorder:
    """Bounded always-on event recorder with crash-bundle dumping.

    Parameters
    ----------
    capacity:
        Ring size per stream.  Each stream keeps the *last* ``capacity``
        records; older records are dropped (counted, never stored), so
        memory stays O(``capacity``) no matter how long the run.
    bundle_dir:
        When set, terminal failures auto-dump a postmortem bundle here
        (:meth:`auto_dump`); without it the recorder only records.
    max_dataset_bytes:
        Largest dataset payload embedded into a bundle (base64).
        Larger datasets are recorded by fingerprint + shape only.

    Thread-safe: the serving layer records from client and worker
    threads concurrently.
    """

    def __init__(
        self,
        capacity: int = 256,
        bundle_dir: "str | Path | None" = None,
        max_dataset_bytes: int = DEFAULT_MAX_DATASET_BYTES,
    ) -> None:
        if capacity < 1:
            raise ParameterError(
                f"recorder capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self.bundle_dir = Path(bundle_dir) if bundle_dir is not None else None
        self.max_dataset_bytes = int(max_dataset_bytes)
        self.enabled = True
        self._lock = threading.Lock()
        self._rings: dict[str, deque] = {
            stream: deque(maxlen=self.capacity)
            for stream in RECORDER_STREAMS
        }
        self._recorded: dict[str, int] = dict.fromkeys(RECORDER_STREAMS, 0)
        #: Pinned + replayable job context (see :meth:`set_job`).
        self._job: dict[str, Any] | None = None
        self._job_pinned = False
        self._data: np.ndarray | None = None
        self._fault_schedule: dict[str, Any] | None = None
        self._reference_digest: str | None = None
        self._failure: dict[str, Any] | None = None
        self._checkpoints: dict[str, str] = {}
        self.dumped_paths: list[Path] = []
        self._dumped_error_ids: set[int] = set()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, stream: str, record: dict[str, Any]) -> None:
        """Append one record to a stream ring (stamps the correlation id)."""
        if not self.enabled:
            return
        if stream not in self._rings:
            raise ParameterError(
                f"unknown recorder stream {stream!r}; "
                f"expected one of {', '.join(RECORDER_STREAMS)}"
            )
        if "corr" not in record:
            corr = _correlation.get()
            if corr is not None:
                record["corr"] = corr
        with self._lock:
            self._recorded[stream] += 1
            self._rings[stream].append(record)

    def record_span(
        self, name: str, category: str, start: float, duration: float,
        span_id: "int | None", attrs: dict[str, Any],
    ) -> None:
        """Record one closed tracer span (called by the tracer tap)."""
        self.record("spans", {
            "name": name,
            "category": category,
            "start": start,
            "duration": duration,
            "span_id": span_id,
            "attrs": _jsonable(attrs),
        })

    def record_kernel(self, event: Any) -> None:
        """Record one kernel launch; ``comm.*`` events are collectives."""
        stream = "collectives" if event.name.startswith("comm.") else "kernels"
        self.record(stream, {
            "name": event.name,
            "pipeline": event.pipeline,
            "phase": event.phase,
            "start": event.start,
            "duration": event.duration,
            "clock": event.clock,
            "span_id": event.span_id,
        })

    def record_counter(self, track: str, ts: float, value: float) -> None:
        """Record one counter-track sample."""
        self.record("counters", {"track": track, "ts": ts, "value": value})

    def record_fault(self, record: Any) -> None:
        """Record one fault-injector firing (an ``InjectionRecord``)."""
        self.record("faults", {
            "kind": record.kind,
            "operation": record.operation,
            "site": record.site,
            "sequence": record.sequence,
            "spec": record.spec,
        })

    def record_resilience(self, event: dict[str, Any]) -> None:
        """Record one resilience action (a ``ResilienceEvent.as_dict()``)."""
        self.record("resilience", dict(event))

    def record_serve(
        self, event: dict[str, Any], corr: "str | None" = None
    ) -> None:
        """Record one serve lifecycle event (a ``ServeEvent.as_dict()``)."""
        record = dict(event)
        if corr is not None:
            record["corr"] = corr
        self.record("serve", record)

    # ------------------------------------------------------------------
    # Replay context
    # ------------------------------------------------------------------
    def set_job(
        self,
        *,
        data: "np.ndarray | None" = None,
        backend: str = "",
        params: Any = None,
        seed: Any = 0,
        policy: Any = None,
        engine_kwargs: "dict[str, Any] | None" = None,
        fingerprint: str = "",
        pinned: bool = False,
    ) -> None:
        """Capture the replayable context of the job now running.

        The serving layer *pins* the request-level context (original
        integer seed, leader request) before executing a group; the
        resilient runner records its own view for bare (non-serve) fits
        but never overwrites a pinned context — coalesced members run
        with a mid-stream :class:`~repro.rng.RandomSource` whose state
        is not the request's seed.
        """
        if self._job_pinned and not pinned:
            return
        engine_kwargs = dict(engine_kwargs or {})
        self._checkpoints = {
            key: str(engine_kwargs[key])
            for key in ("checkpoint_path", "resume_from")
            if engine_kwargs.get(key)
        }
        job = {
            "backend": backend,
            "params": _serialize_params(params),
            "seed": _serialize_seed(seed),
            "policy": _serialize_policy(policy),
            "engine_kwargs": _serialize_engine_kwargs(engine_kwargs),
            "fingerprint": fingerprint,
        }
        with self._lock:
            self._job = job
            self._job_pinned = pinned or self._job_pinned
            if data is not None:
                self._data = data

    def set_fault_schedule(
        self, specs: "list[str]", seed: int
    ) -> None:
        """Record the active fault schedule (parseable spec strings)."""
        with self._lock:
            self._fault_schedule = {
                "specs": [str(spec) for spec in specs],
                "seed": int(seed),
            }

    def set_reference_digest(self, digest: str) -> None:
        """Record the solo-reference result digest (the "solo bits").

        Used by failure classes with no recorded error (determinism and
        chaos-contract violations): replay then asserts the digest
        instead of an error class.
        """
        with self._lock:
            self._reference_digest = str(digest)

    def record_failure(
        self,
        reason: str,
        error: "BaseException | None" = None,
        events: "list | None" = None,
        detail: str = "",
    ) -> None:
        """Record the terminal failure the next bundle dump describes."""
        failure: dict[str, Any] = {
            "reason": reason,
            "detail": detail,
            "error_type": type(error).__name__ if error is not None else "",
            "message": str(error) if error is not None else "",
        }
        last = getattr(error, "last_error", None)
        failure["last_error_type"] = (
            type(last).__name__ if last is not None else ""
        )
        if events is None:
            events = getattr(error, "events", None)
        failure["events"] = [
            event.as_dict() if hasattr(event, "as_dict") else dict(event)
            for event in (events or [])
        ]
        with self._lock:
            self._failure = failure

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Ring contents plus recorded/dropped bookkeeping."""
        with self._lock:
            streams = {
                stream: list(ring) for stream, ring in self._rings.items()
            }
            recorded = dict(self._recorded)
        return {
            "capacity": self.capacity,
            "streams": streams,
            "recorded": recorded,
            "dropped": {
                stream: recorded[stream] - len(streams[stream])
                for stream in RECORDER_STREAMS
            },
        }

    def __len__(self) -> int:
        with self._lock:
            return sum(len(ring) for ring in self._rings.values())

    @property
    def dump_count(self) -> int:
        """Bundles written so far (auto or explicit)."""
        return len(self.dumped_paths)

    def dumped_error(self, error: BaseException) -> bool:
        """Whether a bundle was already dumped for this exact error."""
        return id(error) in self._dumped_error_ids

    # ------------------------------------------------------------------
    # Bundles
    # ------------------------------------------------------------------
    def bundle(
        self,
        reason: str,
        error: "BaseException | None" = None,
        health: "dict | None" = None,
    ) -> dict[str, Any]:
        """Assemble the full ``repro.postmortem/1`` bundle payload."""
        from .export import report_envelope  # deferred: avoids a cycle

        if error is not None or self._failure is None:
            self.record_failure(
                reason, error,
                detail=self._failure.get("detail", "")
                if self._failure else "",
            )
        with self._lock:
            failure = dict(self._failure or {})
            failure.setdefault("reason", reason)
            job = dict(self._job) if self._job is not None else None
            data = self._data
            schedule = (
                dict(self._fault_schedule)
                if self._fault_schedule is not None else None
            )
            reference = self._reference_digest
            checkpoints = dict(self._checkpoints)
        return {
            **report_envelope(POSTMORTEM_SCHEMA),
            "reason": failure.get("reason", reason),
            "failure": failure,
            "job": job,
            "dataset": _serialize_dataset(data, self.max_dataset_bytes),
            "fault_schedule": schedule,
            "reference_digest": reference,
            "checkpoints": checkpoints,
            "rings": self.snapshot(),
            "health": _jsonable(health) if health is not None else None,
            "environment": {
                "python": platform.python_version(),
                "platform": sys.platform,
                "numpy": np.__version__,
            },
        }

    def dump(
        self,
        reason: str,
        error: "BaseException | None" = None,
        health: "dict | None" = None,
        path: "str | Path | None" = None,
    ) -> Path:
        """Write one postmortem bundle; returns its path.

        ``path`` overrides the bundle directory; otherwise the bundle
        lands in ``bundle_dir`` under a unique
        ``postmortem-<reason>-<n>.json`` name.
        """
        payload = self.bundle(reason, error=error, health=health)
        if path is None:
            if self.bundle_dir is None:
                raise ParameterError(
                    "recorder has no bundle_dir; pass an explicit path"
                )
            self.bundle_dir.mkdir(parents=True, exist_ok=True)
            slug = "".join(
                ch if ch.isalnum() or ch == "-" else "-" for ch in reason
            )
            path = (
                self.bundle_dir
                / f"postmortem-{slug}-{len(self.dumped_paths) + 1:03d}.json"
            )
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        tmp.replace(path)
        self.dumped_paths.append(path)
        if error is not None:
            self._dumped_error_ids.add(id(error))
        return path

    def auto_dump(
        self,
        reason: str,
        error: "BaseException | None" = None,
        health: "dict | None" = None,
    ) -> "Path | None":
        """Best-effort dump on the failure path.

        Returns ``None`` without a bundle directory, when a bundle was
        already written for this exact error (the runner dumps before
        the serving layer sees the exception), or when writing fails —
        a broken disk must never mask the original error.
        """
        if self.bundle_dir is None:
            return None
        if error is not None and self.dumped_error(error):
            return None
        try:
            return self.dump(reason, error=error, health=health)
        except Exception:  # noqa: BLE001 - never mask the original error
            return None


# ----------------------------------------------------------------------
# Context serialization (the replayable job spec)
# ----------------------------------------------------------------------
def _serialize_params(params: Any) -> "dict[str, Any] | None":
    if params is None:
        return None
    from dataclasses import asdict, is_dataclass

    if is_dataclass(params):
        return _jsonable(asdict(params))
    return _jsonable(dict(params))


def _serialize_seed(seed: Any) -> dict[str, Any]:
    from ..rng import RandomSource

    if isinstance(seed, RandomSource):
        return {"kind": "state", "state": _jsonable(seed.get_state())}
    if seed is None:
        return {"kind": "int", "value": None}
    return {"kind": "int", "value": int(seed)}


def _serialize_policy(policy: Any) -> "dict[str, Any] | None":
    if policy is None:
        return None
    return {
        "max_retries": int(policy.max_retries),
        "backoff_base": float(policy.backoff_base),
        "allow_degraded": bool(policy.allow_degraded),
        "max_reshards": (
            None if policy.max_reshards is None else int(policy.max_reshards)
        ),
    }


def _serialize_engine_kwargs(engine_kwargs: dict[str, Any]) -> dict[str, Any]:
    """Replayable engine kwargs: model objects become named specs."""
    serialized: dict[str, Any] = {}
    for key, value in engine_kwargs.items():
        if key == "resume_from":
            continue  # checkpoint refs live in their own section
        spec_names = _spec_names(value)
        if spec_names is not None:
            serialized[key] = spec_names
        elif value is None or isinstance(value, (bool, int, float, str)):
            serialized[key] = value
        else:
            serialized[key] = {"unserializable": type(value).__name__}
    return serialized


def _spec_names(value: Any) -> "dict[str, Any] | None":
    """``Fleet``/``GpuSpec`` values as name lists (rebuildable)."""
    specs = getattr(value, "specs", None)
    if specs is not None and all(hasattr(spec, "name") for spec in specs):
        return {"fleet_specs": [spec.name for spec in specs]}
    if hasattr(value, "name") and hasattr(value, "memory_bytes"):
        return {"gpu_spec": value.name}
    return None


def _serialize_dataset(
    data: "np.ndarray | None", max_bytes: int
) -> "dict[str, Any] | None":
    if data is None:
        return None
    from ..data.fingerprint import dataset_fingerprint

    array = np.ascontiguousarray(np.asarray(data))
    record: dict[str, Any] = {
        "fingerprint": dataset_fingerprint(array),
        "shape": list(array.shape),
        "dtype": str(array.dtype),
        "data_b64": None,
    }
    if array.nbytes <= max_bytes:
        record["data_b64"] = base64.b64encode(array.tobytes()).decode()
    return record


# ----------------------------------------------------------------------
# Ambient installation (mirrors repro.obs.tracer)
# ----------------------------------------------------------------------
_current: ContextVar[FlightRecorder | None] = ContextVar(
    "repro_flight_recorder", default=None
)


def current_recorder() -> "FlightRecorder | None":
    """The ambient recorder (``None`` unless installed)."""
    return _current.get()


def set_current_recorder(recorder: "FlightRecorder | None"):
    """Install ``recorder`` ambiently; returns a reset token."""
    return _current.set(recorder)


@contextmanager
def use_recorder(recorder: "FlightRecorder | None"):
    """Install ``recorder`` as the ambient recorder for a block."""
    token = _current.set(recorder)
    try:
        yield recorder
    finally:
        _current.reset(token)
