"""Span-based tracer: the instrumentation spine of the reproduction.

The paper's running-time argument (Section 5.4) is read off profiler
timelines; this module gives the reproduction the same kind of record.
A :class:`Tracer` collects three kinds of data during a run:

* **spans** — nested wall-clock intervals mirroring the host control
  flow (``fit > iterative > iteration > compute_l`` ...).  Every engine
  variant emits the *same* span names and nesting for the same input,
  which the differential tests assert;
* **kernel events** — flat records of simulated kernel launches.  GPU
  engines stamp them on the *modeled device clock* (cumulative modeled
  seconds), the SIMT emulator on the wall clock;
* **counter samples** — time-series values (cache hit-rate, modeled
  bandwidth) sampled on the device clock.

Tracing is opt-in.  The module-level *current tracer* defaults to a
disabled singleton whose :meth:`Tracer.span` returns a shared no-op
context manager, so instrumented code paths cost a few attribute
lookups per span when tracing is off (the micro-benchmark test bounds
this at well under 2 % of an engine run).

Thread model: each thread builds its own span stack (spans record the
opening thread), while the flat event lists are guarded by a lock, so
one tracer can observe a multi-threaded study.

When a :class:`~repro.obs.recorder.FlightRecorder` is ambient, the
*enabled* paths additionally forward closed spans, kernel events, and
counter samples into its bounded rings (``comm.*`` kernels land in the
collectives ring); the disabled early-return paths are untouched, so
the ≤2 % disabled-overhead bound holds with or without a recorder.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

from .metrics import MetricsRegistry
from .recorder import current_recorder

__all__ = [
    "Span",
    "KernelEvent",
    "CounterSample",
    "Tracer",
    "NULL_TRACER",
    "current_tracer",
    "set_current_tracer",
    "use_tracer",
]


@dataclass(slots=True)
class KernelEvent:
    """One simulated kernel launch on a timeline.

    ``clock`` distinguishes the modeled device clock (vectorized GPU
    engines, seconds of modeled GPU time) from the wall clock (the SIMT
    emulator's real Python execution time).
    """

    name: str
    pipeline: str
    phase: str
    start: float
    duration: float
    clock: str = "modeled"
    grid_blocks: int = 0
    threads_per_block: int = 0
    span_id: int | None = None  #: innermost host span open at launch time


@dataclass(slots=True)
class CounterSample:
    """One sample of a counter track (device-clock seconds)."""

    track: str
    ts: float
    value: float


class Span:
    """A named wall-clock interval with attributes, children, and links."""

    __slots__ = (
        "span_id",
        "name",
        "category",
        "start",
        "end",
        "attrs",
        "children",
        "links",
        "thread",
        "_tracer",
    )

    def __init__(
        self, tracer: "Tracer", span_id: int, name: str, category: str,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        self.category = category
        self.attrs = attrs
        self.children: list["Span"] = []
        self.links: list[int] = []
        self.start = 0.0
        self.end: float | None = None
        self.thread = 0

    # -- context-manager protocol -------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        self._tracer._close(self)
        return False

    # -- mutation ------------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; returns ``self``."""
        self.attrs.update(attrs)
        return self

    def link(self, span_id: int | None) -> "Span":
        """Link this span to another span (shared-work provenance)."""
        if span_id is not None:
            self.links.append(span_id)
        return self

    # -- inspection ----------------------------------------------------
    @property
    def duration(self) -> float:
        """Seconds from start to end (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def signature(self) -> tuple:
        """Structure-only view ``(name, (child signatures...))``.

        Two runs with identical control flow produce equal signatures
        regardless of timing or attribute values — the property the
        emulated-vs-vectorized differential test asserts.
        """
        return (self.name, tuple(child.signature() for child in self.children))

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable representation of the subtree."""
        return {
            "span_id": self.span_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "links": list(self.links),
            "children": [child.as_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {len(self.children)} children)"


class _NoopSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()
    span_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def link(self, span_id: int | None) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects spans, kernel events, counter samples, and metrics."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.epoch = time.perf_counter()
        self.roots: list[Span] = []
        self.kernel_events: list[KernelEvent] = []
        self.counter_samples: list[CounterSample] = []
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Wall-clock seconds since this tracer was created."""
        return time.perf_counter() - self.epoch

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, category: str = "phase", **attrs: Any):
        """Open a span as a context manager (no-op when disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, span_id, name, category, attrs)

    def _open(self, span: Span) -> None:
        stack = self._stack()
        span.thread = threading.get_ident()
        span.start = self.now()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)

    def _close(self, span: Span) -> None:
        span.end = self.now()
        stack = self._stack()
        # Tolerate exceptions unwinding several spans out of order.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        recorder = current_recorder()
        if recorder is not None:
            recorder.record_span(
                span.name, span.category, span.start, span.duration,
                span.span_id, span.attrs,
            )

    def current_span_id(self) -> int | None:
        """Id of the innermost open span on this thread (None outside)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1].span_id if stack else None

    # ------------------------------------------------------------------
    # Flat events
    # ------------------------------------------------------------------
    def kernel(
        self,
        name: str,
        pipeline: str,
        phase: str,
        start: float,
        duration: float,
        clock: str = "modeled",
        grid_blocks: int = 0,
        threads_per_block: int = 0,
    ) -> None:
        """Record one kernel launch on a timeline."""
        if not self.enabled:
            return
        event = KernelEvent(
            name=name,
            pipeline=pipeline,
            phase=phase,
            start=start,
            duration=duration,
            clock=clock,
            grid_blocks=grid_blocks,
            threads_per_block=threads_per_block,
            span_id=self.current_span_id(),
        )
        with self._lock:
            self.kernel_events.append(event)
        recorder = current_recorder()
        if recorder is not None:
            recorder.record_kernel(event)

    def device_offset(self) -> float:
        """Largest modeled end time recorded so far.

        Each engine's cost model starts its modeled clock at zero; a
        device created mid-trace (e.g. the second setting of a study)
        shifts its events by this offset so successive device timelines
        concatenate instead of overlapping on the pipeline tracks.
        """
        with self._lock:
            return max(
                (
                    event.start + event.duration
                    for event in self.kernel_events
                    if event.clock == "modeled"
                ),
                default=0.0,
            )

    def counter(self, track: str, value: float, ts: float) -> None:
        """Record one sample of a counter track (device clock)."""
        if not self.enabled:
            return
        with self._lock:
            self.counter_samples.append(
                CounterSample(track=track, ts=ts, value=float(value))
            )
        recorder = current_recorder()
        if recorder is not None:
            recorder.record_counter(track, ts, float(value))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def all_spans(self) -> list[Span]:
        """Every recorded span, depth-first from each root."""
        return [span for root in self.roots for span in root.walk()]

    def find_spans(self, name: str) -> list[Span]:
        """All spans with the given name."""
        return [span for span in self.all_spans() if span.name == name]


#: Disabled singleton used when no tracer is installed.
NULL_TRACER = Tracer(enabled=False)

_current: ContextVar[Tracer] = ContextVar("repro_obs_tracer", default=NULL_TRACER)


def current_tracer() -> Tracer:
    """The ambient tracer (the disabled singleton unless installed)."""
    return _current.get()


def set_current_tracer(tracer: Tracer | None):
    """Install ``tracer`` as the ambient tracer; returns a reset token.

    Passing ``None`` restores the disabled singleton.
    """
    return _current.set(tracer if tracer is not None else NULL_TRACER)


@contextmanager
def use_tracer(tracer: Tracer):
    """Install ``tracer`` as the ambient tracer for a ``with`` block."""
    token = _current.set(tracer)
    try:
        yield tracer
    finally:
        _current.reset(token)
