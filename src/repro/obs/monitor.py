"""SLO monitoring: declarative objectives, structured logs, health files.

PR 2 gave the repository raw telemetry; this module turns the serving
layer's telemetry into *judgment*.  Three pieces:

* :class:`SloObjective` / :func:`default_slos` — declarative service
  level objectives (p95 queued latency, admission-rejection rate, a
  hard zero on determinism violations, error-budget burn over a
  sliding window);
* :class:`SloTracker` — consumes the service's
  :class:`~repro.serve.events.ServeEvent` stream and evaluates every
  objective against it;
* :class:`ServiceMonitor` — the on-disk side: one structured JSON log
  record per event (carrying the tracer's trace/span ids for
  correlation), periodic metric snapshots, the latest Prometheus
  scrape (``metrics.prom``), and a ``health.json`` report consumed by
  ``repro monitor``.

The monitor directory layout::

    monitor/
      events.jsonl     one JSON record per service event
      events.jsonl.1   rotated segment (1 = most recently rotated)
      snapshots.jsonl  periodic metric snapshots
      snapshots.jsonl.1  ...
      metrics.prom     latest Prometheus text-format scrape
      health.json      latest SLO health report (repro.health/1)

Both JSONL logs rotate under a total size cap (``max_log_bytes``
across ``log_segments`` numbered segments, oldest deleted first), so a
long-running service never grows the directory without bound;
:func:`read_monitor_events` reads rotated segments transparently.
"""

from __future__ import annotations

import json
import math
import threading
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from .export import report_envelope
from .metrics import MetricsRegistry
from .prometheus import prometheus_text

if TYPE_CHECKING:  # pragma: no cover - hints only
    from ..serve.events import ServeEvent

__all__ = [
    "HEALTH_SCHEMA",
    "MONITOR_EVENT_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "SloObjective",
    "SloResult",
    "SloReport",
    "SloTracker",
    "ServiceMonitor",
    "default_slos",
    "load_health",
    "read_monitor_events",
]

#: Health report schema identifier (bump on incompatible changes).
HEALTH_SCHEMA = "repro.health/1"
#: Structured per-event log record schema.
MONITOR_EVENT_SCHEMA = "repro.monitor_event/1"
#: Periodic metric snapshot record schema.
SNAPSHOT_SCHEMA = "repro.monitor_snapshot/1"


@dataclass(frozen=True, slots=True)
class SloObjective:
    """One declarative objective: ``metric op threshold``.

    ``op`` is ``"<="`` (budget-style objectives), ``">="``
    (floor-style objectives like fleet availability), or ``"=="``
    (hard invariants like the determinism-violation count).  Rate
    metrics are evaluated over the trailing ``window_seconds`` of the
    event stream.
    """

    name: str
    metric: str
    op: str
    threshold: float
    description: str = ""
    window_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.op not in ("<=", ">=", "=="):
            raise ValueError(
                f"op must be '<=', '>=' or '==', got {self.op!r}"
            )
        if self.window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive, got {self.window_seconds}"
            )

    def met(self, value: float) -> bool:
        if self.op == "==":
            return value == self.threshold
        if self.op == ">=":
            return value >= self.threshold
        return value <= self.threshold


@dataclass(frozen=True, slots=True)
class SloResult:
    """One evaluated objective."""

    objective: SloObjective
    value: float
    ok: bool

    def as_dict(self) -> dict[str, Any]:
        obj = self.objective
        return {
            "name": obj.name,
            "metric": obj.metric,
            "op": obj.op,
            "threshold": obj.threshold,
            "window_seconds": obj.window_seconds,
            "description": obj.description,
            "value": self.value,
            "ok": self.ok,
        }


@dataclass(frozen=True, slots=True)
class SloReport:
    """Every objective evaluated at one instant."""

    now: float
    results: tuple[SloResult, ...]

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def as_dict(self) -> dict[str, Any]:
        return {
            "now": self.now,
            "ok": self.ok,
            "slos": [result.as_dict() for result in self.results],
        }


def default_slos(
    queued_p95_seconds: float = 0.5,
    rejection_rate: float = 0.1,
    burn_rate: float = 1.0,
    window_seconds: float = 60.0,
    mttr_seconds: float = 60.0,
    availability: float = 0.5,
) -> tuple[SloObjective, ...]:
    """The service's default objectives (see ``docs/observability.md``)."""
    return (
        SloObjective(
            name="queued-latency-p95",
            metric="queued_latency_p95_seconds",
            op="<=",
            threshold=queued_p95_seconds,
            description="p95 seconds a job waits between submit and start",
            window_seconds=window_seconds,
        ),
        SloObjective(
            name="rejection-rate",
            metric="rejection_rate",
            op="<=",
            threshold=rejection_rate,
            description="fraction of submissions refused by admission control",
            window_seconds=window_seconds,
        ),
        SloObjective(
            name="determinism-violations",
            metric="determinism_violations",
            op="==",
            threshold=0.0,
            description="served responses differing from their solo reference",
            window_seconds=window_seconds,
        ),
        SloObjective(
            name="error-budget-burn",
            metric="error_budget_burn",
            op="<=",
            threshold=burn_rate,
            description="failure rate over the window divided by the budget",
            window_seconds=window_seconds,
        ),
        SloObjective(
            name="fleet-mttr",
            metric="fleet_mttr_seconds",
            op="<=",
            threshold=mttr_seconds,
            description="mean seconds to recover a lost fleet member",
            window_seconds=window_seconds,
        ),
        SloObjective(
            name="fleet-availability",
            metric="fleet_availability",
            op=">=",
            threshold=availability,
            description="fraction of known fleet members currently serving",
            window_seconds=window_seconds,
        ),
    )


def _event_dict(event: "ServeEvent | dict") -> dict[str, Any]:
    return event.as_dict() if hasattr(event, "as_dict") else dict(event)


class SloTracker:
    """Evaluates objectives against a live serve-event stream.

    Feed every :class:`~repro.serve.events.ServeEvent` (or its
    ``as_dict()`` form) to :meth:`observe`; determinism violations are
    detected outside the service (the loadgen oracle) and arrive via
    :meth:`record_violations`.  :meth:`evaluate` computes each
    objective's metric over its trailing window and returns an
    :class:`SloReport`.  Thread-safe.
    """

    def __init__(
        self,
        objectives: Sequence[SloObjective] | None = None,
        error_budget: float = 0.01,
    ) -> None:
        if not 0.0 < error_budget <= 1.0:
            raise ValueError(
                f"error_budget must be in (0, 1], got {error_budget}"
            )
        self.objectives = (
            tuple(objectives) if objectives is not None else default_slos()
        )
        self.error_budget = error_budget
        self._lock = threading.Lock()
        self._last_ts = 0.0
        self._submit_ts: dict[int, float] = {}
        #: (ts, seconds waited in the queue), one per started/shortcut job.
        self._queued: list[tuple[float, float]] = []
        self._submits: list[float] = []
        self._rejects: list[float] = []
        #: (ts, succeeded) per terminal outcome (complete/fail).
        self._outcomes: list[tuple[float, bool]] = []
        self._violations = 0.0
        #: Every device tag ever named in a device_* event.
        self._devices: set[str] = set()
        #: Currently-down device tag -> ts it went down.
        self._down_since: dict[str, float] = {}
        #: (ts, seconds-to-recover) per recovery (event- or direct-fed).
        self._recoveries: list[tuple[float, float]] = []

    def observe(self, event: "ServeEvent | dict") -> None:
        record = _event_dict(event)
        kind = record["kind"]
        ts = float(record["ts"])
        job_id = int(record.get("job_id", -1))
        with self._lock:
            self._last_ts = max(self._last_ts, ts)
            if kind == "submit":
                self._submits.append(ts)
                self._submit_ts[job_id] = ts
            elif kind in ("cache_hit", "dedupe"):
                # Answered (or attached) without waiting for a start.
                submitted = self._submit_ts.pop(job_id, ts)
                self._queued.append((ts, max(0.0, ts - submitted)))
            elif kind == "start":
                submitted = self._submit_ts.pop(job_id, ts)
                self._queued.append((ts, max(0.0, ts - submitted)))
            elif kind == "reject":
                self._submit_ts.pop(job_id, None)
                self._rejects.append(ts)
            elif kind == "complete":
                self._outcomes.append((ts, True))
            elif kind == "fail":
                self._outcomes.append((ts, False))
            elif kind == "device_down":
                device = str(record.get("detail", "")) or "device"
                self._devices.add(device)
                self._down_since.setdefault(device, ts)
            elif kind == "device_recovered":
                device = str(record.get("detail", "")) or "device"
                self._devices.add(device)
                went_down = self._down_since.pop(device, None)
                if went_down is not None:
                    self._recoveries.append((ts, max(0.0, ts - went_down)))

    def record_violations(self, count: int = 1) -> None:
        """Register determinism violations found by an external oracle."""
        with self._lock:
            self._violations += count

    def record_recovery(self, seconds: float, now: float | None = None) -> None:
        """Register one fleet recovery measured outside the event stream
        (e.g. a :class:`~repro.resilience.runner.ResilientRunner`
        re-shard's ``recovery_s``)."""
        with self._lock:
            ts = now if now is not None else self._last_ts
            self._last_ts = max(self._last_ts, ts)
            self._recoveries.append((ts, max(0.0, float(seconds))))

    def set_devices(self, tags: Sequence[str]) -> None:
        """Declare the fleet-member universe availability is judged over.

        Without this, the tracker only learns members from ``device_*``
        events, so the first loss would read as 0% availability no
        matter how many healthy members remain.
        """
        with self._lock:
            self._devices.update(str(tag) for tag in tags)

    def metric_value(self, metric: str, window: float, now: float) -> float:
        """Compute one metric over ``[now - window, now]``."""
        cutoff = now - window
        if metric == "queued_latency_p95_seconds":
            waits = [w for ts, w in self._queued if ts >= cutoff]
            return float(np.percentile(waits, 95)) if waits else 0.0
        if metric == "rejection_rate":
            submits = sum(1 for ts in self._submits if ts >= cutoff)
            rejects = sum(1 for ts in self._rejects if ts >= cutoff)
            return rejects / submits if submits else 0.0
        if metric == "determinism_violations":
            return self._violations
        if metric == "error_budget_burn":
            outcomes = [ok for ts, ok in self._outcomes if ts >= cutoff]
            if not outcomes:
                return 0.0
            failure_rate = sum(1 for ok in outcomes if not ok) / len(outcomes)
            return failure_rate / self.error_budget
        if metric == "fleet_mttr_seconds":
            recoveries = [r for ts, r in self._recoveries if ts >= cutoff]
            return sum(recoveries) / len(recoveries) if recoveries else 0.0
        if metric == "fleet_availability":
            # 1.0 until a device_* event names any member (no fleet =
            # nothing can be unavailable).
            if not self._devices:
                return 1.0
            up = len(self._devices) - len(self._down_since)
            return up / len(self._devices)
        raise ValueError(f"unknown SLO metric {metric!r}")

    def evaluate(self, now: float | None = None) -> SloReport:
        """Evaluate every objective at ``now`` (default: last event ts)."""
        with self._lock:
            at = now if now is not None else self._last_ts
            results = []
            for objective in self.objectives:
                value = self.metric_value(
                    objective.metric, objective.window_seconds, at
                )
                results.append(
                    SloResult(
                        objective=objective,
                        value=value,
                        ok=objective.met(value),
                    )
                )
        return SloReport(now=at, results=tuple(results))


class ServiceMonitor:
    """Writes structured logs, metric snapshots, and health reports.

    One instance belongs to one :class:`~repro.serve.service.ClusterService`
    (which forwards every event); it can also be driven manually in
    tests.  All writes are serialized by an internal lock; the scrape
    and health files are replaced atomically so a concurrent reader
    never sees a torn file.

    ``max_log_bytes`` caps each JSONL log's total footprint: the log
    is kept as ``log_segments`` size-capped segments (the active file
    plus numbered rotations, ``.1`` newest), and rotating past the last
    segment deletes the oldest — so a long loadgen run's directory
    stays bounded.  ``on_unhealthy``, when set to a callable, is
    invoked (outside the write lock) with every health report whose
    ``ok`` is false — the service uses it to trigger postmortem dumps
    on SLO breaches.
    """

    #: Names of the rotating JSONL logs the monitor appends to.
    _LOGS = ("events.jsonl", "snapshots.jsonl")

    def __init__(
        self,
        directory: str | Path,
        metrics: MetricsRegistry | None = None,
        objectives: Sequence[SloObjective] | None = None,
        snapshot_every: float = 1.0,
        error_budget: float = 0.01,
        max_log_bytes: int = 4 << 20,
        log_segments: int = 4,
    ) -> None:
        if max_log_bytes < 1:
            raise ValueError(
                f"max_log_bytes must be >= 1, got {max_log_bytes}"
            )
        if log_segments < 1:
            raise ValueError(
                f"log_segments must be >= 1, got {log_segments}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.slo = SloTracker(objectives, error_budget=error_budget)
        self.snapshot_every = snapshot_every
        self.max_log_bytes = int(max_log_bytes)
        self.log_segments = int(log_segments)
        #: Per-segment byte budget (one segment of the total cap).
        self._segment_bytes = max(1, self.max_log_bytes // self.log_segments)
        #: Callback for unhealthy health reports (``None`` = disabled).
        self.on_unhealthy = None
        #: Correlates every log record of this service lifetime.
        self.trace_id = uuid.uuid4().hex[:16]
        self._lock = threading.Lock()
        self._events = 0
        self._last_snapshot = -math.inf
        self._log_sizes = dict.fromkeys(self._LOGS, 0)
        # Truncate leftovers (including rotated segments) from a
        # previous lifetime in the same directory.
        for name in self._LOGS:
            (self.directory / name).write_text("")
            for segment in self.directory.glob(f"{name}.*"):
                if segment.suffix.lstrip(".").isdigit():
                    segment.unlink()

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def on_event(self, event: "ServeEvent | dict") -> None:
        """Log one event and fold it into the SLO tracker."""
        record = _event_dict(event)
        self.slo.observe(record)
        line = json.dumps(
            {
                "schema": MONITOR_EVENT_SCHEMA,
                "trace_id": self.trace_id,
                **record,
            }
        )
        with self._lock:
            self._events += 1
            self._append("events.jsonl", line)
        self.maybe_snapshot(float(record["ts"]))

    def _append(self, name: str, line: str) -> None:
        """Append one record to a rotating log (caller holds the lock)."""
        payload = line + "\n"
        if (
            self._log_sizes[name]
            and self._log_sizes[name] + len(payload) > self._segment_bytes
        ):
            self._rotate(name)
        with open(self.directory / name, "a") as handle:
            handle.write(payload)
        self._log_sizes[name] += len(payload)

    def _rotate(self, name: str) -> None:
        """Shift segments up one slot; the oldest falls off the end."""
        oldest = self.directory / f"{name}.{self.log_segments - 1}"
        if self.log_segments == 1:
            oldest = self.directory / name
        oldest.unlink(missing_ok=True)
        for index in range(self.log_segments - 2, 0, -1):
            segment = self.directory / f"{name}.{index}"
            if segment.exists():
                segment.rename(self.directory / f"{name}.{index + 1}")
        if self.log_segments > 1:
            (self.directory / name).rename(self.directory / f"{name}.1")
        self._log_sizes[name] = 0

    def record_violations(self, count: int = 1) -> None:
        """Forward determinism violations to the tracker and metrics."""
        self.slo.record_violations(count)
        self.metrics.counter("serve.determinism.violations").inc(count)

    def record_recovery(self, seconds: float, now: float | None = None) -> None:
        """Forward one fleet recovery (MTTR sample) to the tracker and
        metrics."""
        self.slo.record_recovery(seconds, now)
        self.metrics.counter("fleet.recovery.mttr_seconds").inc(seconds)
        self.metrics.histogram("fleet.recovery.mttr").observe(seconds)

    # ------------------------------------------------------------------
    # Snapshots and health
    # ------------------------------------------------------------------
    def maybe_snapshot(self, now: float) -> bool:
        """Snapshot if at least ``snapshot_every`` seconds have passed."""
        with self._lock:
            if now - self._last_snapshot < self.snapshot_every:
                return False
            self._last_snapshot = now
        self.snapshot(now)
        return True

    def snapshot(self, now: float | None = None, final: bool = False) -> dict:
        """Write the scrape, a snapshot record, and the health report."""
        report = self.health_report(now, final=final)
        snapshot_record = {
            "schema": SNAPSHOT_SCHEMA,
            "trace_id": self.trace_id,
            "ts": report["now"],
            "ok": report["ok"],
            "metrics": self.metrics.as_dict(),
        }
        with self._lock:
            self._atomic_write(
                self.directory / "metrics.prom", prometheus_text(self.metrics)
            )
            self._append("snapshots.jsonl", json.dumps(snapshot_record))
            self._atomic_write(
                self.directory / "health.json",
                json.dumps(report, indent=2) + "\n",
            )
        if not report["ok"] and self.on_unhealthy is not None:
            try:
                self.on_unhealthy(report)
            except Exception:  # noqa: BLE001 - a hook must not kill serving
                pass
        return report

    def health_report(
        self, now: float | None = None, final: bool = False
    ) -> dict:
        """The ``repro.health/1`` report: every SLO plus service state."""
        slo_report = self.slo.evaluate(now)
        counters = self.metrics.as_dict()
        return {
            **report_envelope(HEALTH_SCHEMA),
            "trace_id": self.trace_id,
            "final": final,
            "now": slo_report.now,
            "ok": slo_report.ok,
            "slos": [result.as_dict() for result in slo_report.results],
            "events": self._events,
            "service": {
                "counters": {
                    name: value
                    for name, value in counters["counters"].items()
                    if name.startswith(("serve.", "fleet."))
                },
                "gauges": counters["gauges"],
                "latency_seconds": counters["histograms"].get(
                    "serve.latency_seconds",
                    {"count": 0, "p50": 0.0, "p95": 0.0},
                ),
            },
        }

    def flush(self, now: float | None = None) -> dict:
        """Final snapshot + SLO summary (graceful-shutdown path)."""
        return self.snapshot(now, final=True)

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(text)
        tmp.replace(path)


# ----------------------------------------------------------------------
# Reader side (used by `repro monitor`)
# ----------------------------------------------------------------------
def load_health(directory: str | Path) -> dict:
    """Read the latest ``health.json`` from a monitor directory.

    Raises :class:`FileNotFoundError` when the directory has no health
    report yet (the service has not snapshotted).
    """
    path = Path(directory) / "health.json"
    if not path.exists():
        raise FileNotFoundError(
            f"no health report at {path} (is the monitored service "
            f"running with a monitor directory?)"
        )
    return json.loads(path.read_text())


def read_monitor_events(directory: str | Path) -> list[dict]:
    """Read the structured event log from a monitor directory.

    Transparently includes rotated segments (``events.jsonl.N``),
    oldest first, so callers see one continuous stream regardless of
    how many times the log rotated underneath them.
    """
    directory = Path(directory)
    segments = sorted(
        (
            path
            for path in directory.glob("events.jsonl.*")
            if path.suffix.lstrip(".").isdigit()
        ),
        key=lambda path: int(path.suffix.lstrip(".")),
        reverse=True,  # highest number = oldest segment
    )
    records: list[dict] = []
    for path in [*segments, directory / "events.jsonl"]:
        if not path.exists():
            continue
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    return records
