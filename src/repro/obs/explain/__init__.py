"""Performance attribution & regression triage (``repro explain``).

The explain layer turns the substrate's cost ledger
(:class:`~repro.hardware.cost_model.CostEvent`) into actionable
*attribution*: which kernel, pipeline, and cost component the modeled
seconds belong to, where the launch-overhead (fusion) headroom is, what
the Dist cache saved, how occupied the device was — plus differential
attribution between two runs (the ``repro regress`` triage section) and
fleet straggler/imbalance analysis.

All internal arithmetic is exact (:class:`fractions.Fraction`), so the
attribution *conserves*: summing any regrouping of the ledger
reproduces the run's modeled seconds bit for bit.
"""

from .attribution import (
    KernelAttribution,
    RunAttribution,
    attribute_run,
    attribution_record,
)
from .diff import (
    diff_attribution,
    diff_counters,
    load_comparable,
    summarize_attribution,
    triage_record,
    triage_lines,
)
from .fleetattr import fleet_attribution
from .flamegraph import collapsed_stacks, format_collapsed, speedscope_profile
from .report import EXPLAIN_SCHEMA, explain_report, validate_explain_report

__all__ = [
    "KernelAttribution",
    "RunAttribution",
    "attribute_run",
    "attribution_record",
    "diff_attribution",
    "diff_counters",
    "load_comparable",
    "summarize_attribution",
    "triage_record",
    "triage_lines",
    "fleet_attribution",
    "collapsed_stacks",
    "format_collapsed",
    "speedscope_profile",
    "EXPLAIN_SCHEMA",
    "explain_report",
    "validate_explain_report",
]
