"""Flamegraph export: collapsed stacks + speedscope JSON.

Kernel events on the modeled device clock are the leaf frames; each is
rooted at the host span path that was open when it launched (via the
event's ``span_id``), with the kernel pipeline interposed:

    fit;iterative;iteration;compute_l;compute_l.distances 1234567

:func:`format_collapsed` emits the Brendan Gregg collapsed-stack format
(``flamegraph.pl`` compatible, weights in integer nanoseconds of
modeled time); :func:`speedscope_profile` emits a sampled-profile JSON
loadable at https://www.speedscope.app.
"""

from __future__ import annotations

from typing import Any

from ..tracer import Tracer

__all__ = ["collapsed_stacks", "format_collapsed", "speedscope_profile"]


def _span_paths(tracer: Tracer) -> dict[int, tuple[str, ...]]:
    """Map span_id -> path of span names from the root."""
    paths: dict[int, tuple[str, ...]] = {}

    def visit(span, prefix: tuple[str, ...]) -> None:
        path = prefix + (span.name,)
        paths[span.span_id] = path
        for child in span.children:
            visit(child, path)

    for root in tracer.roots:
        visit(root, ())
    return paths


def collapsed_stacks(tracer: Tracer) -> list[tuple[tuple[str, ...], float]]:
    """Aggregate kernel events into (stack frames, modeled seconds).

    Stacks are sorted lexicographically so the output is deterministic;
    an un-traced run yields an empty list.
    """
    paths = _span_paths(tracer)
    stacks: dict[tuple[str, ...], float] = {}
    for event in tracer.kernel_events:
        base = paths.get(event.span_id, ()) if event.span_id is not None else ()
        frames = base + (event.pipeline, event.name)
        stacks[frames] = stacks.get(frames, 0.0) + max(event.duration, 0.0)
    return sorted(stacks.items())


def format_collapsed(
    stacks: list[tuple[tuple[str, ...], float]]
) -> str:
    """Render stacks in collapsed format (weights = modeled nanoseconds)."""
    if not stacks:
        return "(no kernel events recorded)\n"
    lines = []
    for frames, seconds in stacks:
        weight = max(1, int(round(seconds * 1e9)))
        lines.append(f"{';'.join(frames)} {weight}")
    return "\n".join(lines) + "\n"


def speedscope_profile(
    tracer: Tracer, name: str = "repro modeled run"
) -> dict[str, Any]:
    """Speedscope sampled-profile JSON of the modeled kernel timeline."""
    stacks = collapsed_stacks(tracer)
    frame_index: dict[str, int] = {}
    samples: list[list[int]] = []
    weights: list[float] = []
    for frames, seconds in stacks:
        sample = []
        for frame in frames:
            index = frame_index.setdefault(frame, len(frame_index))
            sample.append(index)
        samples.append(sample)
        weights.append(seconds)
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": [{"name": frame} for frame in frame_index]},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
        "exporter": "repro.obs.explain",
    }
