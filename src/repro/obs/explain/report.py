"""The schema-versioned ``repro.explain/1`` report and its validator.

``repro explain`` writes this payload (and the CI ``explain-smoke`` job
schema-checks it): the shared report envelope, the run's attribution,
and optional fleet-attribution / flamegraph / diff sections.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..export import report_envelope, validate_bench_report
from ...hardware.cost_model import COMPONENTS

__all__ = ["EXPLAIN_SCHEMA", "explain_report", "validate_explain_report"]

#: Explain report schema (bump on incompatible changes).
EXPLAIN_SCHEMA = "repro.explain/1"


def explain_report(
    attribution: Mapping[str, Any],
    label: str = "",
    counters: Mapping[str, Any] | None = None,
    fleet: Mapping[str, Any] | None = None,
    diff: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the ``repro.explain/1`` payload."""
    report: dict[str, Any] = {
        **report_envelope(EXPLAIN_SCHEMA),
        "label": label,
        "attribution": dict(attribution),
    }
    if counters is not None:
        report["counters"] = dict(counters)
    if fleet is not None:
        report["fleet"] = dict(fleet)
    if diff is not None:
        report["diff"] = dict(diff)
    return report


def validate_explain_report(report: Any) -> list[str]:
    """Structurally validate a ``repro.explain/1`` report.

    Returns a list of problems (empty when clean).  Beyond the shared
    envelope the attribution must be present, its components must be
    known :data:`~repro.hardware.cost_model.COMPONENTS`, every kernel's
    components must sum to its seconds, and the conservation block must
    witness an exact total.
    """
    problems = validate_bench_report(report, expected_schema=EXPLAIN_SCHEMA)
    if problems:
        return problems
    attribution = report.get("attribution")
    if not isinstance(attribution, dict):
        return ["'attribution' must be an object"]
    total = attribution.get("total_seconds")
    if not isinstance(total, (int, float)) or isinstance(total, bool) or total < 0:
        problems.append("'attribution.total_seconds' must be a non-negative number")
    components = attribution.get("components")
    if not isinstance(components, dict):
        problems.append("'attribution.components' must be an object")
    else:
        for name in components:
            if name not in COMPONENTS:
                problems.append(f"unknown cost component {name!r}")
    kernels = attribution.get("kernels")
    if not isinstance(kernels, list):
        problems.append("'attribution.kernels' must be a list")
    else:
        for kernel in kernels:
            if not isinstance(kernel, dict) or "name" not in kernel:
                problems.append("every kernel entry needs a 'name'")
                continue
            seconds = kernel.get("seconds")
            parts = kernel.get("components", {})
            if not isinstance(seconds, (int, float)) or not isinstance(parts, dict):
                problems.append(
                    f"kernel {kernel['name']!r}: needs numeric 'seconds' "
                    "and a 'components' object"
                )
                continue
            if abs(sum(parts.values()) - seconds) > 1e-12 * max(1.0, abs(seconds)):
                problems.append(
                    f"kernel {kernel['name']!r}: components do not sum to "
                    "its seconds"
                )
    conservation = attribution.get("conservation")
    if not isinstance(conservation, dict):
        problems.append("'attribution.conservation' must be an object")
    elif conservation.get("exact") is not True:
        problems.append(
            "'attribution.conservation.exact' must be true "
            f"(modeled {conservation.get('modeled_seconds')!r} vs "
            f"attributed {conservation.get('attributed_seconds')!r})"
        )
    fleet = report.get("fleet")
    if fleet is not None:
        if not isinstance(fleet, dict):
            problems.append("'fleet' must be an object")
        else:
            for key in ("straggler_index", "comm_fraction", "imbalance"):
                value = fleet.get(key)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"'fleet.{key}' must be a number")
    return problems
