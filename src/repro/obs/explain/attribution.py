"""Hierarchical run attribution from the hardware-model cost ledger.

:func:`attribute_run` regroups a model's :class:`CostEvent` ledger into
the run -> phase -> pipeline -> kernel hierarchy, each level carrying an
exact per-component decomposition (launch / compute / memory / atomic /
transfer / comm).  Because the ledger's arithmetic is exact rational
(:class:`fractions.Fraction`), every regrouping sums back to the run's
modeled seconds *bit for bit* — the conservation contract the explain
tests pin.

On top of the hierarchy three derived diagnostics are computed:

* **fusion headroom** — for each adjacent pair of kernel launches, the
  launch overhead the second launch would shed if fused into the first
  (the per-pair budget ROADMAP item 3's persistent-kernel work is
  banked against);
* **cache savings** — the Dist distance-row cache's hit rate turned
  into flops/bytes/seconds avoided versus the no-cache ablation, scaled
  from the observed per-missed-row cost of ``compute_l.distances``;
* **occupancy rollup** — per-kernel achieved/theoretical occupancy of
  the heaviest launch (:mod:`repro.gpu.occupancy`), plus a
  seconds-weighted achieved-occupancy figure for the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from ...gpu.occupancy import occupancy_report
from ...hardware.cost_model import COMPONENTS, CostEvent, GpuModel, HardwareModel
from ..export import kernel_pipeline

__all__ = [
    "KernelAttribution",
    "RunAttribution",
    "attribute_run",
    "attribution_record",
]

_ZERO = Fraction()


def _event_pipeline(event: CostEvent) -> str:
    """Pipeline a ledger event belongs to (transfers get their track)."""
    if event.kind == "transfer":
        return "transfer"
    return kernel_pipeline(event.name)


def _dominant(exact: dict[str, Fraction]) -> str:
    """First-maximal component in canonical :data:`COMPONENTS` order."""
    if not exact:
        return "compute"
    return max(COMPONENTS, key=lambda c: exact.get(c, _ZERO))


def _floats(exact: dict[str, Fraction]) -> dict[str, float]:
    return {name: float(value) for name, value in exact.items()}


@dataclass(slots=True)
class KernelAttribution:
    """Exact per-component attribution of one kernel (or transfer)."""

    name: str
    pipeline: str
    kind: str
    calls: int
    exact: dict[str, Fraction]

    @property
    def seconds_exact(self) -> Fraction:
        return sum(self.exact.values(), _ZERO)

    @property
    def seconds(self) -> float:
        return float(self.seconds_exact)

    @property
    def dominant(self) -> str:
        return _dominant(self.exact)

    def component_seconds(self) -> dict[str, float]:
        return _floats(self.exact)


@dataclass(slots=True)
class RunAttribution:
    """The full attribution of one run's cost ledger."""

    model_name: str
    total_exact: Fraction
    kernels: list[KernelAttribution]
    phase_exact: dict[str, dict[str, Fraction]]
    pipeline_exact: dict[str, dict[str, Fraction]]
    component_exact: dict[str, Fraction]
    fusion_pairs: list[dict[str, Any]]
    cache: dict[str, Any]
    occupancy: dict[str, Any] | None

    @property
    def total_seconds(self) -> float:
        return float(self.total_exact)

    def component_seconds(self) -> dict[str, float]:
        return _floats(self.component_exact)


def _accumulate(
    table: dict[str, dict[str, Fraction]], key: str, event: CostEvent
) -> None:
    bucket = table.setdefault(key, {})
    for component, value in event.components:
        bucket[component] = bucket.get(component, _ZERO) + value


def _fusion_pairs(events: list[CostEvent]) -> list[dict[str, Any]]:
    """Launch-overhead headroom per adjacent pair of kernel launches.

    Fusing launch *b* into the immediately preceding launch *a* saves
    *b*'s fixed launch overhead; summing that over every observed
    ``a -> b`` transition is the pair's fusion headroom.
    """
    pairs: dict[tuple[str, str], dict[str, Any]] = {}
    previous: CostEvent | None = None
    for event in events:
        if event.kind not in ("kernel", "fleet"):
            previous = None
            continue
        overhead = dict(event.components).get("launch", _ZERO)
        if previous is not None and overhead:
            key = (previous.name, event.name)
            entry = pairs.setdefault(
                key,
                {
                    "before": key[0],
                    "after": key[1],
                    "transitions": 0,
                    "_exact": _ZERO,
                },
            )
            entry["transitions"] += 1
            entry["_exact"] += overhead
        previous = event
    ordered = sorted(pairs.values(), key=lambda e: -e["_exact"])
    for entry in ordered:
        entry["headroom_seconds"] = float(entry.pop("_exact"))
    return ordered


def _cache_savings(model: HardwareModel) -> dict[str, Any]:
    """Dist-cache savings attribution versus the no-cache ablation.

    The Dist cache counters record how many medoid distance rows were
    reused (``hit``) versus recomputed (``missed``); the observed
    ``compute_l.distances`` launches give the per-missed-row flops and
    bytes, so the hits convert directly into work avoided.  (The H
    strategy's reuse is structural — the incremental launches simply
    never happen — so it needs no counter-based attribution here.)
    """
    counter = model.counter
    hit = counter.get("cache.dist_rows_hit")
    missed = counter.get("cache.dist_rows_missed")
    evicted = counter.get("cache.dist_rows_evicted")
    rows = hit + missed
    if rows <= 0:
        return {"enabled": False, "hits": 0.0, "misses": 0.0}
    launches = [
        l for l in counter.kernel_launches if l.name == "compute_l.distances"
    ]
    missed_flops = sum(l.flops for l in launches)
    missed_bytes = sum(l.gmem_bytes for l in launches)
    missed_seconds = sum(
        float(e.seconds_exact)
        for e in model.events
        if e.kind in ("kernel", "fleet") and e.name == "compute_l.distances"
    )
    per_row = (1.0 / missed) if missed > 0 else 0.0
    return {
        "enabled": True,
        "hits": hit,
        "misses": missed,
        "evictions": evicted,
        "hit_rate": hit / rows,
        "avoided_flops": hit * missed_flops * per_row,
        "avoided_bytes": hit * missed_bytes * per_row,
        "avoided_seconds_estimate": hit * missed_seconds * per_row,
        "missed_seconds": missed_seconds,
    }


def _occupancy_rollup(
    model: HardwareModel, kernels: list[KernelAttribution]
) -> dict[str, Any] | None:
    """Per-kernel occupancy of the heaviest launch + weighted rollup."""
    gpu = model if isinstance(model, GpuModel) else getattr(model, "logical", None)
    if not isinstance(gpu, GpuModel):
        return None
    groups: dict[str, list] = {}
    for launch in gpu.counter.kernel_launches:
        groups.setdefault(launch.name, []).append(launch)
    if not groups:
        return None
    seconds = {k.name: k.seconds for k in kernels}
    per_kernel: dict[str, Any] = {}
    weighted = 0.0
    weight_total = 0.0
    for name, launches in groups.items():
        heaviest = max(launches, key=gpu.launch_time)
        try:
            report = occupancy_report(
                gpu.spec,
                heaviest.grid_blocks,
                heaviest.threads_per_block,
                registers_per_thread=heaviest.registers_per_thread,
                smem_bytes_per_block=heaviest.smem_bytes_per_block,
            )
        except ValueError:
            continue
        per_kernel[name] = {
            "achieved": report.achieved_occupancy,
            "theoretical": report.theoretical_occupancy,
            "limiter": report.limiter,
            "grid_blocks": report.grid_blocks,
            "threads_per_block": report.threads_per_block,
        }
        weight = seconds.get(name, 0.0)
        weighted += report.achieved_occupancy * weight
        weight_total += weight
    if not per_kernel:
        return None
    return {
        "gpu": gpu.spec.name,
        "kernels": per_kernel,
        "weighted_achieved": weighted / weight_total if weight_total else 0.0,
    }


def attribute_run(model: HardwareModel) -> RunAttribution:
    """Attribute a model's cost ledger; exact at every level."""
    kernel_table: dict[str, KernelAttribution] = {}
    phase_table: dict[str, dict[str, Fraction]] = {}
    pipeline_table: dict[str, dict[str, Fraction]] = {}
    component_table: dict[str, Fraction] = {}
    total = _ZERO
    for event in model.events:
        total += event.seconds_exact
        pipeline = _event_pipeline(event)
        entry = kernel_table.get(event.name)
        if entry is None:
            entry = kernel_table[event.name] = KernelAttribution(
                name=event.name,
                pipeline=pipeline,
                kind=event.kind,
                calls=0,
                exact={},
            )
        entry.calls += 1
        for component, value in event.components:
            entry.exact[component] = entry.exact.get(component, _ZERO) + value
            component_table[component] = (
                component_table.get(component, _ZERO) + value
            )
        _accumulate(phase_table, event.phase, event)
        _accumulate(pipeline_table, pipeline, event)
    kernels = sorted(kernel_table.values(), key=lambda k: -k.seconds_exact)
    return RunAttribution(
        model_name=model.name,
        total_exact=total,
        kernels=kernels,
        phase_exact=phase_table,
        pipeline_exact=pipeline_table,
        component_exact=component_table,
        fusion_pairs=_fusion_pairs(model.events),
        cache=_cache_savings(model),
        occupancy=_occupancy_rollup(model, kernels),
    )


def _table_record(
    table: dict[str, dict[str, Fraction]]
) -> dict[str, dict[str, Any]]:
    record: dict[str, dict[str, Any]] = {}
    for key, exact in table.items():
        record[key] = {
            "seconds": float(sum(exact.values(), _ZERO)),
            "components": _floats(exact),
            "dominant": _dominant(exact),
        }
    return record


def attribution_record(attr: RunAttribution) -> dict[str, Any]:
    """The attribution as a JSON-serializable record (floats).

    The ``conservation`` block is computed from the exact rationals:
    ``attributed_seconds`` re-sums the per-kernel per-component exact
    values, so ``exact`` is a bit-for-bit equality witness against the
    run's modeled seconds.
    """
    total = attr.total_seconds
    attributed_exact = _ZERO
    for kernel in attr.kernels:
        attributed_exact += sum(kernel.exact.values(), _ZERO)
    attributed = float(attributed_exact)
    fusion_total = sum(p["headroom_seconds"] for p in attr.fusion_pairs)
    return {
        "model": attr.model_name,
        "total_seconds": total,
        "components": attr.component_seconds(),
        "phases": _table_record(attr.phase_exact),
        "pipelines": _table_record(attr.pipeline_exact),
        "kernels": [
            {
                "name": kernel.name,
                "pipeline": kernel.pipeline,
                "kind": kernel.kind,
                "calls": kernel.calls,
                "seconds": kernel.seconds,
                "share": kernel.seconds / total if total else 0.0,
                "components": kernel.component_seconds(),
                "dominant": kernel.dominant,
            }
            for kernel in attr.kernels
        ],
        "fusion": {
            "total_headroom_seconds": fusion_total,
            "headroom_fraction": fusion_total / total if total else 0.0,
            "pairs": attr.fusion_pairs,
        },
        "cache": dict(attr.cache),
        "occupancy": attr.occupancy,
        "conservation": {
            "modeled_seconds": total,
            "attributed_seconds": attributed,
            "exact": attributed == total,
        },
    }
