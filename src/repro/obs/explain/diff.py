"""Differential attribution: what changed between two runs, and why.

``repro explain --diff A B`` and the ``repro regress`` triage section
both reduce to the same primitive: two attribution *summaries* (flat
kernel / component / pipeline-component second maps) plus two counter
maps, diffed key by key.  Because modeled seconds are deterministic,
diffing two identical runs yields exact float zeros everywhere
(``zero: true``), and any non-zero mover is a real behavior change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "summarize_attribution",
    "diff_attribution",
    "diff_counters",
    "load_comparable",
    "triage_record",
    "triage_lines",
]


def summarize_attribution(source: Mapping[str, Any]) -> dict[str, Any]:
    """Flatten an attribution record into comparable second maps.

    Accepts a full :func:`~repro.obs.explain.attribution_record`
    payload, an explain report wrapping one under ``"attribution"``, or
    an already-flat summary (``pipeline_components`` present) —
    baseline records store the latter.
    """
    if "attribution" in source and isinstance(source["attribution"], Mapping):
        source = source["attribution"]
    if "pipeline_components" in source:
        return {
            "total_seconds": float(source.get("total_seconds", 0.0)),
            "components": dict(source.get("components", {})),
            "kernels": dict(source.get("kernels", {})),
            "pipeline_components": dict(source["pipeline_components"]),
        }
    kernels: dict[str, float] = {}
    for kernel in source.get("kernels", []):
        kernels[kernel["name"]] = (
            kernels.get(kernel["name"], 0.0) + float(kernel["seconds"])
        )
    pipeline_components: dict[str, float] = {}
    for pipeline, entry in source.get("pipelines", {}).items():
        for component, seconds in entry.get("components", {}).items():
            key = f"{pipeline}/{component}"
            pipeline_components[key] = (
                pipeline_components.get(key, 0.0) + float(seconds)
            )
    return {
        "total_seconds": float(source.get("total_seconds", 0.0)),
        "components": dict(source.get("components", {})),
        "kernels": kernels,
        "pipeline_components": pipeline_components,
    }


def _movers(
    baseline: Mapping[str, Any], fresh: Mapping[str, Any]
) -> list[dict[str, Any]]:
    """Per-key deltas between two second/count maps, largest first."""
    rows = []
    for key in sorted(set(baseline) | set(fresh)):
        old = float(baseline.get(key, 0.0))
        new = float(fresh.get(key, 0.0))
        if old == new:
            continue
        rows.append(
            {
                "name": key,
                "baseline": old,
                "fresh": new,
                "delta": new - old,
                "rel_delta": (new - old) / old if old else None,
            }
        )
    rows.sort(key=lambda row: -abs(row["delta"]))
    return rows


def diff_attribution(
    baseline: Mapping[str, Any], fresh: Mapping[str, Any]
) -> dict[str, Any]:
    """Diff two attributions (any shape :func:`summarize_attribution` takes).

    Deterministic modeled time makes this exact: two identical runs
    produce ``delta_seconds == 0.0`` and empty mover lists, reported as
    ``zero: true``.
    """
    base = summarize_attribution(baseline)
    cur = summarize_attribution(fresh)
    delta = cur["total_seconds"] - base["total_seconds"]
    kernels = _movers(base["kernels"], cur["kernels"])
    components = _movers(base["components"], cur["components"])
    pipeline_components = _movers(
        base["pipeline_components"], cur["pipeline_components"]
    )
    return {
        "baseline_seconds": base["total_seconds"],
        "fresh_seconds": cur["total_seconds"],
        "delta_seconds": delta,
        "rel_delta": (
            delta / base["total_seconds"] if base["total_seconds"] else None
        ),
        "zero": (
            delta == 0.0
            and not kernels
            and not components
            and not pipeline_components
        ),
        "kernels": kernels,
        "components": components,
        "pipeline_components": pipeline_components,
    }


def _flat_counters(counters: Mapping[str, Any]) -> dict[str, float]:
    """Counter map with per-seed lists collapsed to their sums."""
    flat = {}
    for name, value in counters.items():
        flat[name] = float(sum(value)) if isinstance(value, list) else float(value)
    return flat


def diff_counters(
    baseline: Mapping[str, Any], fresh: Mapping[str, Any]
) -> list[dict[str, Any]]:
    """Per-counter deltas (per-seed lists are summed), largest first."""
    return _movers(_flat_counters(baseline), _flat_counters(fresh))


def load_comparable(path: str | Path) -> dict[str, Any]:
    """Load one side of ``repro explain --diff`` from a JSON file.

    Understands explain reports (``repro.explain/1``), baseline records
    (``repro.bench_baseline/1``, as committed under
    ``benchmarks/baselines/``), and anything carrying a flat or full
    ``attribution`` payload.  Returns ``{label, attribution, counters,
    modeled_seconds}`` ready for :func:`diff_attribution` /
    :func:`diff_counters`.
    """
    path = Path(path)
    record = json.loads(path.read_text())
    if not isinstance(record, dict):
        raise ValueError(f"{path}: expected a JSON object")
    schema = record.get("schema", "")
    label = str(record.get("label") or path.name)
    attribution = None
    counters: dict[str, Any] = {}
    modeled = None
    if isinstance(record.get("attribution"), Mapping):
        attribution = summarize_attribution(record["attribution"])
    elif "pipelines" in record or "pipeline_components" in record:
        attribution = summarize_attribution(record)
    if isinstance(record.get("counters"), Mapping):
        counters = _flat_counters(record["counters"])
    if str(schema).startswith("repro.bench_baseline/"):
        workload = record.get("workload", {})
        label = workload.get("name", label)
        samples = record.get("modeled_seconds") or []
        modeled = float(sum(samples))
    elif attribution is not None:
        modeled = attribution["total_seconds"]
    if attribution is None and not counters:
        raise ValueError(
            f"{path}: no attribution or counters payload found "
            f"(schema {schema!r}) — not comparable"
        )
    return {
        "label": label,
        "attribution": attribution,
        "counters": counters,
        "modeled_seconds": modeled,
    }


def triage_record(
    baseline: Mapping[str, Any],
    fresh: Mapping[str, Any],
) -> dict[str, Any]:
    """Triage payload for one regressed workload (gate verdict section).

    ``baseline``/``fresh`` are baseline-style workload records; the
    attribution diff is included when both sides carry an
    ``attribution`` summary (older committed baselines may not).
    """
    counters = diff_counters(
        baseline.get("counters", {}) or {}, fresh.get("counters", {}) or {}
    )
    attribution = None
    if isinstance(baseline.get("attribution"), Mapping) and isinstance(
        fresh.get("attribution"), Mapping
    ):
        attribution = diff_attribution(
            baseline["attribution"], fresh["attribution"]
        )
    triage = {"counters": counters, "attribution": attribution}
    triage["lines"] = triage_lines(triage)
    return triage


def _relative(row: Mapping[str, Any]) -> str:
    rel = row.get("rel_delta")
    if rel is None:
        return f"{row['delta']:+.3g}s"
    return f"{rel * 100:+.0f}%"


def triage_lines(triage: Mapping[str, Any], limit: int = 3) -> list[str]:
    """Human-readable triage clauses, most telling first."""
    lines: list[str] = []
    for row in (triage.get("counters") or [])[:limit]:
        verb = "fell" if row["delta"] < 0 else "rose"
        lines.append(
            f"counter {row['name']} {verb} "
            f"{row['baseline']:g} -> {row['fresh']:g}"
        )
    attribution = triage.get("attribution")
    if attribution:
        for row in (attribution.get("pipeline_components") or [])[:limit]:
            pipeline, _, component = row["name"].partition("/")
            lines.append(
                f"{pipeline} pipeline {component} time {_relative(row)}"
            )
        for row in (attribution.get("kernels") or [])[:limit]:
            lines.append(f"kernel {row['name']} {_relative(row)}")
    return lines
