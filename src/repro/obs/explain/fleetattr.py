"""Fleet straggler / imbalance / comm-fraction attribution.

Consumes the plain :func:`repro.fleet.model.fleet_report` dict (live or
loaded back from ``BENCH_fleet.json``), so the same analysis applies to
a running fleet and to archived bench artifacts.  Per device the fleet
makespan decomposes into

* **busy** — modeled seconds of the device's own sharded launches,
* **sync** — seconds absorbed waiting at collective steps (clock skew
  plus the collective's communication time), and
* **idle** — whatever remains of the makespan (setup skew, tail).

The **straggler index** is the slowest device's busy time over the mean
busy time (1.0 = perfectly balanced); **imbalance** compares the
critical path (the makespan) against the total-work lower bound
``sum(busy)/D + comm``.
"""

from __future__ import annotations

from typing import Any

__all__ = ["fleet_attribution"]


def fleet_attribution(report: dict[str, Any]) -> dict[str, Any]:
    """Straggler/imbalance analysis of one fleet report.

    Degenerate inputs (no devices, a single device, a zero-second
    makespan) produce well-defined neutral values instead of raising.
    """
    devices = report.get("devices") or []
    makespan = max(0.0, float(report.get("total_seconds") or 0.0))
    comm = max(0.0, float(report.get("comm_seconds") or 0.0))
    num = int(report.get("num_devices") or len(devices))

    per_device = []
    for entry in devices:
        busy = float(entry.get("busy_seconds") or 0.0)
        sync = float(entry.get("sync_seconds") or 0.0)
        per_device.append(
            {
                "device": entry.get("device"),
                "busy_seconds": busy,
                "sync_seconds": sync,
                "idle_seconds": max(0.0, makespan - busy - sync),
                "busy_fraction": busy / makespan if makespan > 0 else 0.0,
            }
        )

    busys = [d["busy_seconds"] for d in per_device]
    mean_busy = sum(busys) / len(busys) if busys else 0.0
    max_busy = max(busys) if busys else 0.0
    straggler_device = (
        per_device[busys.index(max_busy)]["device"] if busys else None
    )
    straggler_index = max_busy / mean_busy if mean_busy > 0 else 1.0

    total_work = sum(busys)
    width = max(1, num)
    ideal = total_work / width + comm
    imbalance = makespan / ideal if ideal > 0 else 1.0

    return {
        "num_devices": num,
        "makespan_seconds": makespan,
        "comm_seconds": comm,
        "comm_fraction": comm / makespan if makespan > 0 else 0.0,
        "total_busy_seconds": total_work,
        "mean_busy_seconds": mean_busy,
        "straggler_index": straggler_index,
        "straggler_device": straggler_device,
        "imbalance": imbalance,
        "devices": per_device,
    }
