"""Exporters: Chrome trace-event JSON, run telemetry, schema checks.

Three machine-readable views of one traced run:

* :func:`chrome_trace` — a `Chrome trace-event
  <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
  JSON object loadable in Perfetto or ``chrome://tracing``.  Host spans
  become complete (``X``) events on the wall-clock process; modeled
  kernel launches become ``X`` events on a synthetic "device" process
  with one track per kernel pipeline; counter samples become ``C``
  events (cache hit-rate, modeled bandwidth).
* :func:`run_record` / :func:`study_record` — flat JSONL telemetry
  records for ``BENCH_*.json``-style regression tracking.
* :func:`validate_chrome_trace` — a structural schema check (used by
  the CI trace-smoke job): events must carry numeric, non-negative
  ``ts``/``dur``, ``B``/``E`` pairs must match per track, and complete
  events on one track must nest without partial overlap.
"""

from __future__ import annotations

import json
import re
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from .tracer import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - hints only
    from ..core.multiparam import MultiParamResult
    from ..result import ProclusResult

__all__ = [
    "PIPELINES",
    "kernel_pipeline",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "validate_serve_report",
    "report_envelope",
    "validate_bench_report",
    "run_record",
    "study_record",
    "write_jsonl",
    "read_jsonl",
]

#: Telemetry record schema identifier (bump on incompatible changes).
TELEMETRY_SCHEMA = "repro.telemetry/1"

#: Every schema tag is ``repro.<name>/<version>``.
_SCHEMA_RE = re.compile(r"^repro\.[a-z0-9_]+/([1-9][0-9]*)$")


def report_envelope(schema: str) -> dict[str, Any]:
    """The shared ``schema``/``version``/``created`` report envelope.

    Every ``BENCH_*.json`` emitter (trace smoke, chaos, serve loadgen,
    bench runner, regression gate, health reports) spreads this at the
    top of its payload so downstream tooling can dispatch on one
    uniform header.  ``version`` duplicates the schema suffix as an
    integer for convenience; ``created`` is a UTC ISO-8601 timestamp.
    """
    match = _SCHEMA_RE.match(schema)
    if match is None:
        raise ValueError(
            f"schema must look like 'repro.<name>/<version>', got {schema!r}"
        )
    return {
        "schema": schema,
        "version": int(match.group(1)),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def validate_bench_report(
    report: Any, expected_schema: str | None = None
) -> list[str]:
    """Validate any ``BENCH_*.json`` report's shared envelope.

    Returns a list of problems (empty when clean): the report must be
    an object carrying a well-formed ``schema`` tag (optionally equal
    to ``expected_schema``), a ``version`` integer matching the tag's
    suffix, and a string ``created`` timestamp.  Reports with a
    schema-specific structural validator (currently
    ``repro.serve_bench/1``) are additionally checked in depth.
    """
    if not isinstance(report, dict):
        return ["report must be a JSON object"]
    problems: list[str] = []
    schema = report.get("schema")
    if not isinstance(schema, str) or _SCHEMA_RE.match(schema) is None:
        problems.append(
            f"'schema' must look like 'repro.<name>/<version>', got {schema!r}"
        )
        return problems
    if expected_schema is not None and schema != expected_schema:
        problems.append(
            f"'schema' must be {expected_schema!r}, got {schema!r}"
        )
    suffix = int(schema.rsplit("/", 1)[1])
    version = report.get("version")
    if version != suffix:
        problems.append(
            f"'version' must be {suffix} (the schema suffix), got {version!r}"
        )
    created = report.get("created")
    if not isinstance(created, str) or not created:
        problems.append(f"'created' must be a timestamp string, got {created!r}")
    if schema == "repro.serve_bench/1":
        problems.extend(validate_serve_report(report))
    return problems

#: The paper's seven kernel pipelines, in dependency order.  Every
#: modeled kernel launch maps onto exactly one of these device tracks.
PIPELINES = (
    "greedy",
    "compute_l",
    "find_dimensions",
    "assign_points",
    "evaluate",
    "update",
    "outliers",
)

#: Kernel-name prefix (before the first ``.``) -> pipeline.
_PREFIX_TO_PIPELINE = {
    "greedy": "greedy",
    "compute_l": "compute_l",
    "find_dimensions": "find_dimensions",
    # The refinement X pass is the FindDimensions reduction over CBest.
    "refinement": "find_dimensions",
    "assign_points": "assign_points",
    "evaluate_cluster": "evaluate",
    "update_iteration": "update",
    "remove_outliers": "outliers",
}

#: Synthetic process ids in the exported trace.
_HOST_PID = 1
_DEVICE_PID = 2


def kernel_pipeline(name: str) -> str:
    """Map a kernel name (e.g. ``"compute_l.build_l"``) to its pipeline."""
    prefix = name.split(".", 1)[0]
    return _PREFIX_TO_PIPELINE.get(prefix, prefix)


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def _meta(pid: int, name: str, tid: int | None = None, what: str = "process_name") -> dict:
    event: dict[str, Any] = {
        "ph": "M", "pid": pid, "name": what, "args": {"name": name}, "ts": 0,
    }
    if tid is not None:
        event["tid"] = tid
    return event


def _span_args(span: Span) -> dict[str, Any]:
    args: dict[str, Any] = {"span_id": span.span_id}
    if span.links:
        args["links"] = list(span.links)
    for key, value in span.attrs.items():
        if isinstance(value, (bool, int, float, str)) or value is None:
            args[key] = value
        else:
            args[key] = str(value)
    return args


def chrome_trace(tracer: Tracer, label: str = "") -> dict[str, Any]:
    """Build a Chrome trace-event JSON object from a tracer's records."""
    events: list[dict[str, Any]] = []
    events.append(_meta(_HOST_PID, "host (python, wall clock)"))
    events.append(_meta(_DEVICE_PID, "device (modeled GPU)"))

    # Host spans: one tid per python thread, in first-seen order.
    thread_tids: dict[int, int] = {}
    for root in tracer.roots:
        for span in root.walk():
            tid = thread_tids.setdefault(span.thread, len(thread_tids) + 1)
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "pid": _HOST_PID,
                    "tid": tid,
                    "ts": span.start * 1e6,
                    "dur": max(span.duration, 0.0) * 1e6,
                    "args": _span_args(span),
                }
            )
    for ident, tid in thread_tids.items():
        events.append(_meta(_HOST_PID, f"python thread {tid}", tid, "thread_name"))

    # Kernel events: modeled clock -> device pid, one tid per pipeline;
    # wall clock (the SIMT emulator) -> a dedicated host track.
    emulator_tid = len(thread_tids) + 1
    has_emulated = False
    pipeline_tids = {name: index + 1 for index, name in enumerate(PIPELINES)}
    for event in tracer.kernel_events:
        if event.clock == "wall":
            has_emulated = True
            pid, tid = _HOST_PID, emulator_tid
        else:
            pid = _DEVICE_PID
            tid = pipeline_tids.setdefault(
                event.pipeline, len(pipeline_tids) + 1
            )
        events.append(
            {
                "name": event.name,
                "cat": "kernel",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": event.start * 1e6,
                "dur": max(event.duration, 0.0) * 1e6,
                "args": {
                    "pipeline": event.pipeline,
                    "phase": event.phase,
                    "grid_blocks": event.grid_blocks,
                    "threads_per_block": event.threads_per_block,
                    "span_id": event.span_id,
                },
            }
        )
    if has_emulated:
        events.append(
            _meta(_HOST_PID, "SIMT emulator (wall clock)", emulator_tid, "thread_name")
        )
    for pipeline, tid in pipeline_tids.items():
        events.append(_meta(_DEVICE_PID, pipeline, tid, "thread_name"))

    # Counter tracks on the device timeline.
    for sample in tracer.counter_samples:
        events.append(
            {
                "name": sample.track,
                "ph": "C",
                "pid": _DEVICE_PID,
                "tid": 0,
                "ts": sample.ts * 1e6,
                "args": {"value": sample.value},
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "label": label,
            "spans": sum(1 for r in tracer.roots for _ in r.walk()),
            "kernel_events": len(tracer.kernel_events),
        },
    }


def write_chrome_trace(
    tracer: Tracer, path: str | Path, label: str = ""
) -> Path:
    """Export and write the Chrome trace JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, label=label), handle)
    return path


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------
def _number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_chrome_trace(trace: Any) -> list[str]:
    """Structurally validate a trace-event JSON object.

    Returns a list of problems (empty when the trace is clean): missing
    or non-numeric ``ts``/``dur``, negative durations, unmatched
    ``B``/``E`` events, non-monotonic duration events per track,
    partially overlapping ``X`` events on one track (legal timelines
    nest or are disjoint), non-``comm.*`` events on a fleet
    ``gpu{i}:comm`` track, and counter (``C``) tracks whose samples go
    backwards in time.
    """
    problems: list[str] = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["trace must be an object with a 'traceEvents' array"]
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]

    complete: dict[tuple[Any, Any], list[tuple[float, float, str]]] = {}
    open_stacks: dict[tuple[Any, Any], list[tuple[str, float]]] = {}
    thread_names: dict[tuple[Any, Any], str] = {}
    counter_ts: dict[tuple[Any, Any], float] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            problems.append(f"event {index}: not an object with 'ph'")
            continue
        ph = event["ph"]
        if ph == "M":
            if event.get("name") == "thread_name" and "tid" in event:
                name = (event.get("args") or {}).get("name")
                if isinstance(name, str):
                    thread_names[(event.get("pid"), event["tid"])] = name
            continue
        if not _number(event.get("ts")):
            problems.append(f"event {index} ({event.get('name')!r}): bad 'ts'")
            continue
        ts = float(event["ts"])
        if ts < 0:
            problems.append(f"event {index} ({event.get('name')!r}): negative 'ts'")
        key = (event.get("pid"), event.get("tid"))
        if ph == "X":
            if not _number(event.get("dur")):
                problems.append(
                    f"event {index} ({event.get('name')!r}): X event without numeric 'dur'"
                )
                continue
            dur = float(event["dur"])
            if dur < 0:
                problems.append(
                    f"event {index} ({event.get('name')!r}): negative 'dur'"
                )
                continue
            complete.setdefault(key, []).append(
                (ts, ts + dur, str(event.get("name")))
            )
        elif ph == "B":
            open_stacks.setdefault(key, []).append((str(event.get("name")), ts))
        elif ph == "E":
            stack = open_stacks.setdefault(key, [])
            if not stack:
                problems.append(
                    f"event {index} ({event.get('name')!r}): E without matching B"
                )
            else:
                _, begin_ts = stack.pop()
                if ts + 1e-3 < begin_ts:
                    problems.append(
                        f"event {index} ({event.get('name')!r}): E before its B"
                    )
        elif ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                _number(v) for v in args.values()
            ):
                problems.append(
                    f"event {index} ({event.get('name')!r}): C event needs numeric args"
                )
                continue
            # Counter tracks are time series: per (pid, counter name)
            # samples must not go backwards on the timeline.
            track = (event.get("pid"), str(event.get("name")))
            last = counter_ts.get(track)
            if last is not None and ts < last - 1e-3:
                problems.append(
                    f"event {index} ({event.get('name')!r}): counter sample "
                    f"at ts={ts:.3f} precedes an earlier sample at {last:.3f}"
                )
            counter_ts[track] = max(ts, last) if last is not None else ts
    for key, stack in open_stacks.items():
        for name, _ in stack:
            problems.append(f"track {key}: B event {name!r} never closed")

    # Complete events on one track must form a laminar family: each
    # event either nests inside the enclosing one or starts after it
    # ends.  Partial overlap means an inconsistent timeline.
    eps = 1e-3  # microseconds; absorbs float rounding
    for key, intervals in complete.items():
        intervals.sort(key=lambda item: (item[0], -(item[1] - item[0])))
        stack: list[tuple[float, float, str]] = []
        for start, end, name in intervals:
            while stack and stack[-1][1] <= start + eps:
                stack.pop()
            if stack and end > stack[-1][1] + eps:
                problems.append(
                    f"track {key}: {name!r} [{start:.3f}, {end:.3f}] partially "
                    f"overlaps {stack[-1][2]!r} [{stack[-1][0]:.3f}, {stack[-1][1]:.3f}]"
                )
                continue
            stack.append((start, end, name))

    # Fleet communication tracks (thread_name ``gpu{i}:comm``) may only
    # carry collective events — a compute kernel on a comm track means
    # the exporter mis-assigned a tid.
    comm_track = re.compile(r"^gpu\d+:comm$")
    for key, track_name in thread_names.items():
        if not comm_track.match(track_name):
            continue
        for _, _, name in complete.get(key, []):
            if not name.startswith("comm."):
                problems.append(
                    f"track {key} ({track_name}): non-collective event "
                    f"{name!r} on a fleet comm track"
                )
    return problems


# ----------------------------------------------------------------------
# Run telemetry (JSONL)
# ----------------------------------------------------------------------
def run_record(
    result: "ProclusResult",
    tracer: Tracer | None = None,
    label: str = "",
    seed: int | None = None,
    n: int | None = None,
    d: int | None = None,
    params: Any = None,
) -> dict[str, Any]:
    """One flat telemetry record for a single run (JSON-serializable)."""
    stats = result.stats
    record: dict[str, Any] = {
        **report_envelope(TELEMETRY_SCHEMA),
        "kind": "run",
        "label": label,
        "timestamp": time.time(),
        "backend": stats.backend,
        "hardware": stats.hardware,
        "n": n,
        "d": d,
        "k": result.k,
        "l": (len(result.dimensions[0]) if result.dimensions else None),
        "seed": seed,
        "iterations": result.iterations,
        "best_iteration": result.best_iteration,
        "cost": result.cost,
        "refined_cost": result.refined_cost,
        "outliers": result.n_outliers,
        "modeled_seconds": stats.modeled_seconds,
        "wall_seconds": stats.wall_seconds,
        "peak_device_bytes": stats.peak_device_bytes,
        "phase_seconds": dict(stats.phase_seconds),
        "counters": dict(stats.counters),
    }
    if params is not None:
        record["k"] = params.k
        record["l"] = params.l
    if tracer is not None and tracer.enabled:
        record["spans"] = sum(1 for r in tracer.roots for _ in r.walk())
        record["kernel_events"] = len(tracer.kernel_events)
    return record


def study_record(
    study: "MultiParamResult",
    tracer: Tracer | None = None,
    label: str = "",
    seed: int | None = None,
) -> dict[str, Any]:
    """One flat telemetry record summarizing a multi-parameter study."""
    record: dict[str, Any] = {
        **report_envelope(TELEMETRY_SCHEMA),
        "kind": "study",
        "label": label,
        "timestamp": time.time(),
        "backend": study.backend,
        "level": int(study.level),
        "seed": seed,
        "settings": study.num_settings,
        "modeled_seconds": study.total_stats.modeled_seconds,
        "wall_seconds": study.total_stats.wall_seconds,
        "seconds_per_setting": study.average_seconds_per_setting,
        "phase_seconds": dict(study.total_stats.phase_seconds),
        "counters": dict(study.total_stats.counters),
    }
    if tracer is not None and tracer.enabled:
        record["spans"] = sum(1 for r in tracer.roots for _ in r.walk())
        record["kernel_events"] = len(tracer.kernel_events)
    return record


def write_jsonl(
    path: str | Path, records: Iterable[dict], append: bool = False
) -> Path:
    """Write telemetry records as JSON lines; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a" if append else "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Read telemetry records previously written by :func:`write_jsonl`."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_serve_report(report: Any) -> list[str]:
    """Structurally validate a ``repro.serve_bench/1`` loadgen report.

    Returns a list of problems (empty when the report is clean); the CI
    serve-smoke job fails on any.  Checks the schema tag, the presence
    and types of the load-bearing fields, that the modeled-seconds
    totals are consistent non-negative numbers, and that ``ok`` really
    reflects zero determinism violations plus a strict saving.
    """
    problems: list[str] = []
    if not isinstance(report, dict):
        return ["report must be a JSON object"]
    schema = report.get("schema")
    if schema != "repro.serve_bench/1":
        problems.append(f"schema must be 'repro.serve_bench/1', got {schema!r}")
    for key in ("ok", "config", "requests", "unique_settings",
                "determinism", "totals", "latency_seconds", "wall_seconds",
                "serve", "events"):
        if key not in report:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems

    if not isinstance(report["ok"], bool):
        problems.append("'ok' must be a bool")
    if not isinstance(report["events"], list):
        problems.append("'events' must be a list")

    determinism = report["determinism"]
    violations: Any = None
    if not isinstance(determinism, dict):
        problems.append("'determinism' must be an object")
    else:
        violations = determinism.get("violations")
        if not isinstance(violations, list):
            problems.append("'determinism.violations' must be a list")
            violations = None
        checked = determinism.get("checked")
        if not isinstance(checked, int) or checked < 1:
            problems.append("'determinism.checked' must be a positive int")

    totals = report["totals"]
    saved = None
    if not isinstance(totals, dict):
        problems.append("'totals' must be an object")
    else:
        for key in ("naive_modeled_seconds", "served_modeled_seconds",
                    "saved_modeled_seconds", "speedup"):
            value = totals.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"'totals.{key}' must be a non-negative number")
        naive = totals.get("naive_modeled_seconds")
        served = totals.get("served_modeled_seconds")
        saved = totals.get("saved_modeled_seconds")
        if (
            isinstance(naive, float)
            and isinstance(served, float)
            and isinstance(saved, float)
            and abs((naive - served) - saved) > 1e-9
        ):
            problems.append(
                "'totals.saved_modeled_seconds' does not equal "
                "naive - served"
            )

    latency = report["latency_seconds"]
    if not isinstance(latency, dict):
        problems.append("'latency_seconds' must be an object")
    else:
        for key in ("p50", "p95", "max"):
            value = latency.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(
                    f"'latency_seconds.{key}' must be a non-negative number"
                )

    if violations is not None and isinstance(saved, float):
        expected_ok = not violations and saved > 0.0
        if bool(report.get("ok")) != expected_ok:
            problems.append(
                f"'ok' is {report.get('ok')} but violations="
                f"{len(violations)} and saved={saved:.6g} imply {expected_ok}"
            )
    return problems
