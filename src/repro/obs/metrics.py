"""Unified metrics registry: counters, gauges, and histograms.

Before this module existed the repository had three disconnected ways
of counting work: :class:`~repro.hardware.counters.WorkCounter` (raw
operation counts), the per-phase seconds dict on every
:class:`~repro.hardware.cost_model.HardwareModel`, and the
:class:`~repro.hardware.counters.KernelLaunch` list consumed by the
profiler.  The registry absorbs all three behind one API — the
*adapters* (:meth:`MetricsRegistry.absorb_run_stats`,
:meth:`MetricsRegistry.absorb_work_counter`,
:meth:`MetricsRegistry.absorb_kernel_times`) translate the existing
structures without requiring their call sites to change.

Instruments are cheap mutable cells; the registry is thread-safe for
instrument creation (value updates are per-instrument and assumed
single-writer, which holds for the engine-per-thread usage pattern).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from ..hardware.cost_model import HardwareModel
    from ..hardware.counters import WorkCounter
    from ..result import RunStats

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing value (e.g. flops, bytes, launches)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins value (e.g. current cache hit-rate)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values (count/total/min/max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        with self._lock:
            return self._histograms.setdefault(name, Histogram())

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # Adapters for the pre-existing accounting structures
    # ------------------------------------------------------------------
    def absorb_work_counter(self, counter: "WorkCounter") -> None:
        """Fold a :class:`WorkCounter`'s totals into registry counters."""
        for name, value in counter.as_dict().items():
            self.counter(name).inc(value)
        for launch in counter.kernel_launches:
            self.counter(f"kernel.{launch.name}.launches").inc(1)

    def absorb_phase_seconds(self, phase_seconds: Mapping[str, float]) -> None:
        """Fold a per-phase seconds mapping into ``phase_seconds.*`` counters."""
        for phase, seconds in phase_seconds.items():
            self.counter(f"phase_seconds.{phase}").inc(seconds)

    def absorb_run_stats(self, stats: "RunStats") -> None:
        """Absorb one run's counters and phase seconds."""
        for name, value in stats.counters.items():
            self.counter(name).inc(value)
        self.absorb_phase_seconds(stats.phase_seconds)
        self.counter("runs").inc(1)
        self.counter("iterations").inc(stats.iterations)
        self.histogram("run.modeled_seconds").observe(stats.modeled_seconds)
        self.histogram("run.wall_seconds").observe(stats.wall_seconds)

    def absorb_kernel_times(self, model: "HardwareModel") -> None:
        """Record per-kernel modeled durations from a GPU model's launches.

        No-op for models without a per-launch time (CPU models).
        """
        launch_time = getattr(model, "launch_time", None)
        if launch_time is None:
            return
        for launch in model.counter.kernel_launches:
            self.histogram(f"kernel.{launch.name}.seconds").observe(
                launch_time(launch)
            )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, dict]:
        """Plain-data snapshot (JSON-serializable)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.as_dict() for k, h in sorted(self._histograms.items())
            },
        }
