"""Unified metrics registry: counters, gauges, and histograms.

Before this module existed the repository had three disconnected ways
of counting work: :class:`~repro.hardware.counters.WorkCounter` (raw
operation counts), the per-phase seconds dict on every
:class:`~repro.hardware.cost_model.HardwareModel`, and the
:class:`~repro.hardware.counters.KernelLaunch` list consumed by the
profiler.  The registry absorbs all three behind one API — the
*adapters* (:meth:`MetricsRegistry.absorb_run_stats`,
:meth:`MetricsRegistry.absorb_work_counter`,
:meth:`MetricsRegistry.absorb_kernel_times`) translate the existing
structures without requiring their call sites to change.

Instruments are cheap mutable cells; the registry is thread-safe for
instrument creation (value updates are per-instrument and assumed
single-writer, which holds for the engine-per-thread usage pattern).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from ..hardware.cost_model import HardwareModel
    from ..hardware.counters import WorkCounter
    from ..result import RunStats

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds (seconds-flavoured, 1-2.5-5 per
#: decade).  Modeled kernel times live in the microsecond decades and
#: service latencies in the millisecond-to-second decades, so the range
#: spans both; values above the last bound land in the +Inf bucket.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    float(f"{mantissa}e{exponent}")
    for exponent in range(-6, 2)
    for mantissa in (1, 2.5, 5)
)


class Counter:
    """A monotonically increasing value (e.g. flops, bytes, launches)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins value (e.g. current cache hit-rate)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values with fixed buckets.

    Tracks count/total/min/max exactly plus a per-bucket count over
    :data:`DEFAULT_BUCKETS`-style upper bounds (Prometheus ``le``
    semantics: a value lands in the first bucket whose bound is >= it;
    values above every bound land in the implicit +Inf overflow
    bucket).  :meth:`percentile` interpolates within buckets, clamped
    to the exact observed ``[min, max]`` — so an empty histogram
    reports 0, and a single sample or all-equal samples report the
    exact value.
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "bucket_counts")

    def __init__(self, buckets: Sequence[float] | None = None) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = (
            tuple(sorted(float(b) for b in buckets))
            if buckets is not None
            else DEFAULT_BUCKETS
        )
        #: Per-bucket (non-cumulative) counts; last slot is +Inf overflow.
        self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.bucket_counts[bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``0 <= q <= 100``).

        Exact when the histogram is empty (0), has one sample, or all
        samples are equal; otherwise linearly interpolated inside the
        bucket containing the target rank and clamped to ``[min, max]``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            return 0.0
        if self.min == self.max:
            return self.min
        target = q / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if not bucket_count:
                continue
            lower = self.buckets[index - 1] if index > 0 else self.min
            upper = (
                self.buckets[index] if index < len(self.buckets) else self.max
            )
            if cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                value = lower + fraction * (upper - lower)
                return min(max(value, self.min), self.max)
            cumulative += bucket_count
        return self.max

    def bucket_pairs(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending with +Inf."""
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, self.bucket_counts):
            cumulative += bucket_count
            pairs.append((bound, cumulative))
        pairs.append((float("inf"), cumulative + self.bucket_counts[-1]))
        return pairs

    def as_dict(self) -> dict[str, float]:
        if not self.count:
            return {
                "count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                "mean": 0.0, "p50": 0.0, "p95": 0.0,
            }
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        with self._lock:
            return self._histograms.setdefault(name, Histogram())

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def sorted_counters(self) -> list[tuple[str, Counter]]:
        """Snapshot of ``(name, counter)`` pairs in name order."""
        with self._lock:
            return sorted(self._counters.items())

    def sorted_gauges(self) -> list[tuple[str, Gauge]]:
        """Snapshot of ``(name, gauge)`` pairs in name order."""
        with self._lock:
            return sorted(self._gauges.items())

    def sorted_histograms(self) -> list[tuple[str, Histogram]]:
        """Snapshot of ``(name, histogram)`` pairs in name order."""
        with self._lock:
            return sorted(self._histograms.items())

    # ------------------------------------------------------------------
    # Adapters for the pre-existing accounting structures
    # ------------------------------------------------------------------
    def absorb_work_counter(self, counter: "WorkCounter") -> None:
        """Fold a :class:`WorkCounter`'s totals into registry counters."""
        for name, value in counter.as_dict().items():
            self.counter(name).inc(value)
        for launch in counter.kernel_launches:
            self.counter(f"kernel.{launch.name}.launches").inc(1)

    def absorb_phase_seconds(self, phase_seconds: Mapping[str, float]) -> None:
        """Fold a per-phase seconds mapping into ``phase_seconds.*`` counters."""
        for phase, seconds in phase_seconds.items():
            self.counter(f"phase_seconds.{phase}").inc(seconds)

    def absorb_run_stats(self, stats: "RunStats") -> None:
        """Absorb one run's counters and phase seconds."""
        for name, value in stats.counters.items():
            self.counter(name).inc(value)
        self.absorb_phase_seconds(stats.phase_seconds)
        self.counter("runs").inc(1)
        self.counter("iterations").inc(stats.iterations)
        self.histogram("run.modeled_seconds").observe(stats.modeled_seconds)
        self.histogram("run.wall_seconds").observe(stats.wall_seconds)

    def absorb_kernel_times(self, model: "HardwareModel") -> None:
        """Record per-kernel modeled durations from a GPU model's launches.

        No-op for models without a per-launch time (CPU models).
        """
        launch_time = getattr(model, "launch_time", None)
        if launch_time is None:
            return
        for launch in model.counter.kernel_launches:
            self.histogram(f"kernel.{launch.name}.seconds").observe(
                launch_time(launch)
            )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, dict]:
        """Plain-data snapshot (JSON-serializable)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.as_dict() for k, h in sorted(self._histograms.items())
            },
        }
