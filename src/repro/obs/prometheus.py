"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

:func:`prometheus_text` renders every instrument of a registry in the
`Prometheus exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_:
counters gain the conventional ``_total`` suffix, histograms are
encoded as cumulative ``_bucket{le="..."}`` series plus ``_sum`` and
``_count``, and every name is sanitized into the metric charset with a
``repro_`` prefix.  :func:`parse_prometheus_text` is the scrape-side
inverse used by the round-trip tests and by ``repro monitor`` — it
reads a scrape back into plain values and raises on malformed or
non-cumulative input, so an exposition bug cannot round-trip silently.

Label values are escaped per the exposition spec (backslash, double
quote, and newline become ``\\\\``, ``\\"``, and ``\\n``), and
:func:`parse_labels` is the exact inverse of :func:`format_labels` —
the property tests round-trip adversarial values through both.
"""

from __future__ import annotations

import math
import re
from typing import Mapping

from .metrics import MetricsRegistry

__all__ = [
    "prometheus_name",
    "prometheus_text",
    "parse_prometheus_text",
    "escape_label_value",
    "unescape_label_value",
    "format_labels",
    "parse_labels",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: One ``name="escaped value"`` pair (escaped values contain no raw
#: ``"`` or ``\`` except as part of an escape sequence).
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*)\})?'
    r"\s+(?P<value>\S+)$"
)


# ----------------------------------------------------------------------
# Label-value escaping (exposition spec) and its exact inverse
# ----------------------------------------------------------------------
def escape_label_value(value: str) -> str:
    """Escape a label value for exposition: ``\\``, ``"``, newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def unescape_label_value(text: str) -> str:
    """Exact inverse of :func:`escape_label_value`.

    Raises :class:`ValueError` on a dangling backslash or an escape
    sequence the exposition format does not define.
    """
    out: list[str] = []
    index = 0
    while index < len(text):
        ch = text[index]
        if ch != "\\":
            out.append(ch)
            index += 1
            continue
        if index + 1 >= len(text):
            raise ValueError(f"dangling backslash in label value {text!r}")
        nxt = text[index + 1]
        if nxt == "\\":
            out.append("\\")
        elif nxt == '"':
            out.append('"')
        elif nxt == "n":
            out.append("\n")
        else:
            raise ValueError(
                f"invalid escape sequence \\{nxt} in label value {text!r}"
            )
        index += 2
    return "".join(out)


def format_labels(labels: "Mapping[str, str]") -> str:
    """Render a label set as ``{name="value",...}`` (empty -> ``""``)."""
    if not labels:
        return ""
    parts = []
    for name, value in labels.items():
        if _LABEL_NAME_RE.match(name) is None:
            raise ValueError(f"invalid label name {name!r}")
        parts.append(f'{name}="{escape_label_value(value)}"')
    return "{" + ",".join(parts) + "}"


def parse_labels(text: str) -> dict[str, str]:
    """Parse a label *body* (no braces) back into a dict.

    The exact inverse of :func:`format_labels` on its output:
    ``parse_labels(format_labels(labels)[1:-1]) == labels`` for any
    label set with valid names.  Raises :class:`ValueError` on
    malformed bodies.
    """
    labels: dict[str, str] = {}
    rest = text
    while rest:
        match = _LABEL_RE.match(rest)
        if match is None:
            raise ValueError(f"malformed label segment {rest!r}")
        labels[match.group(1)] = unescape_label_value(match.group(2))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise ValueError(f"malformed label separator at {rest!r}")
    return labels


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Sanitize an instrument name (``serve.cache.hits`` ->
    ``repro_serve_cache_hits``)."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def _format_le(bound: float) -> str:
    return "+Inf" if bound == math.inf else repr(float(bound))


def prometheus_text(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, counter in registry.sorted_counters():
        metric = prometheus_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counter.value)}")
    for name, gauge in registry.sorted_gauges():
        metric = prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge.value)}")
    for name, histogram in registry.sorted_histograms():
        metric = prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        for bound, cumulative in histogram.bucket_pairs():
            labels = format_labels({"le": _format_le(bound)})
            lines.append(f"{metric}_bucket{labels} {cumulative}")
        lines.append(f"{metric}_sum {_format_value(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")
    return "\n".join(lines) + "\n"


def _parse_number(token: str, line: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    try:
        return float(token)
    except ValueError:
        raise ValueError(f"malformed sample value in line {line!r}") from None


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Parse a text-format scrape back into plain values.

    Returns ``{"counters": {name: value}, "gauges": {name: value},
    "histograms": {name: {"buckets": [(le, cumulative)...], "sum": s,
    "count": n}}}`` keyed by the exposed (sanitized) metric names —
    counters without their ``_total`` suffix, histograms without their
    ``_bucket``/``_sum``/``_count`` suffixes.

    Raises :class:`ValueError` on malformed lines, samples without a
    preceding ``# TYPE``, non-cumulative histogram buckets, a missing
    ``+Inf`` bucket, or a ``_count`` that disagrees with it.
    """
    types: dict[str, str] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram"):
                    raise ValueError(f"unknown metric type in line {line!r}")
                types[parts[2]] = parts[3]
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line {line!r}")
        name = match.group("name")
        labels = match.group("labels")
        value = _parse_number(match.group("value"), line)

        if types.get(name) == "counter":
            if not name.endswith("_total"):
                raise ValueError(
                    f"counter sample {name!r} must use the _total suffix"
                )
            counters[name[: -len("_total")]] = value
            continue
        if types.get(name) == "gauge":
            gauges[name] = value
            continue

        base, suffix = name, ""
        for candidate in ("_bucket", "_sum", "_count"):
            if (
                name.endswith(candidate)
                and types.get(name[: -len(candidate)]) == "histogram"
            ):
                base, suffix = name[: -len(candidate)], candidate
                break
        if not suffix:
            raise ValueError(
                f"sample {name!r} has no preceding # TYPE line"
            )
        entry = histograms.setdefault(
            base, {"buckets": [], "sum": 0.0, "count": 0}
        )
        if suffix == "_bucket":
            label_map = parse_labels(labels or "")
            if "le" not in label_map:
                raise ValueError(f"bucket sample without le label: {line!r}")
            bound = _parse_number(label_map["le"], line)
            entry["buckets"].append((bound, value))
        elif suffix == "_sum":
            entry["sum"] = value
        else:  # _count
            entry["count"] = int(value)

    for base, entry in histograms.items():
        buckets = entry["buckets"]
        if not buckets or buckets[-1][0] != math.inf:
            raise ValueError(f"histogram {base!r} is missing its +Inf bucket")
        cumulative = -1.0
        for bound, count in buckets:
            if count < cumulative:
                raise ValueError(
                    f"histogram {base!r} buckets are not cumulative at "
                    f"le={_format_le(bound)}"
                )
            cumulative = count
        if int(buckets[-1][1]) != entry["count"]:
            raise ValueError(
                f"histogram {base!r}: _count {entry['count']} disagrees "
                f"with the +Inf bucket {int(buckets[-1][1])}"
            )
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
