"""Exception hierarchy for the GPU-FAST-PROCLUS reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  More specific
subclasses distinguish user errors (bad parameters, bad data) from
resource errors (simulated device out of memory) and internal invariant
violations in the GPU substrate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "DataValidationError",
    "DeviceError",
    "DeviceOutOfMemoryError",
    "DeviceLostError",
    "KernelLaunchError",
    "TransientDeviceError",
    "TransferCorruptionError",
    "KernelTimeoutError",
    "EmulationError",
    "SanitizerError",
    "ConvergenceError",
    "CheckpointError",
    "ResilienceExhaustedError",
    "ServeError",
    "AdmissionError",
    "PostmortemError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its valid range."""


class DataValidationError(ReproError, ValueError):
    """The input dataset is malformed (wrong shape, dtype, NaN, ...)."""


class DeviceError(ReproError, RuntimeError):
    """A simulated GPU device operation failed."""


class DeviceOutOfMemoryError(DeviceError):
    """A simulated device allocation exceeded the device's memory."""

    def __init__(self, requested: int, free: int, total: int) -> None:
        self.requested = int(requested)
        self.free = int(free)
        self.total = int(total)
        super().__init__(
            f"device out of memory: requested {requested} B, "
            f"free {free} B of {total} B"
        )


class DeviceLostError(DeviceError):
    """A device fell off the bus and every operation on it fails.

    Unlike :class:`TransientDeviceError`, a lost device does not come
    back with a context reset: the failure is permanent for the rest of
    the process (until the fault injector's :meth:`revive`).  ``device``
    carries the lost member's tag (``"dev1"`` for fleet shard 1,
    ``"device"`` for a solo card) so recovery code can re-shard around
    it.
    """

    def __init__(self, message: str, device: str = "device") -> None:
        super().__init__(message)
        self.device = device


class KernelLaunchError(DeviceError):
    """A kernel was launched with an invalid configuration."""


class TransientDeviceError(DeviceError):
    """A device operation failed transiently (retryable after a reset).

    Models CUDA's "sticky" context errors (e.g. ``cudaErrorIllegalAddress``):
    once raised, every subsequent operation on the same device generation
    fails until the context is torn down and rebuilt.  Instances carry
    ``sticky`` so handlers know whether a reset is required before
    retrying.
    """

    def __init__(self, message: str, sticky: bool = True) -> None:
        super().__init__(message)
        self.sticky = bool(sticky)


class TransferCorruptionError(DeviceError):
    """A host<->device transfer was flagged as corrupted (ECC-style).

    The corruption is *detected* (as an ECC double-bit error would be)
    rather than silently propagated, so the transfer's consumer never
    sees bad data — the operation fails and can be retried.
    """


class KernelTimeoutError(DeviceError):
    """A kernel exceeded the (simulated) watchdog time limit."""


class EmulationError(ReproError, RuntimeError):
    """The SIMT emulator detected an invalid kernel behaviour.

    Raised, for example, when threads of one block reach different
    barriers (divergent ``syncthreads``), which on real hardware is
    undefined behaviour.
    """


class SanitizerError(EmulationError):
    """The kernel sanitizer detected a fatal memory error.

    Raised for out-of-bounds accesses (including negative indices,
    which NumPy would silently wrap), where continuing the launch would
    corrupt unrelated memory.  The triggering
    :class:`~repro.gpu.sanitizer.Diagnostic` is attached as
    ``.diagnostic`` and also recorded in the sanitizer's report.
    """

    def __init__(self, message: str, diagnostic: object | None = None) -> None:
        super().__init__(message)
        self.diagnostic = diagnostic


class ConvergenceError(ReproError, RuntimeError):
    """The iterative phase exceeded its iteration budget."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint is missing, corrupt, or incompatible with the run.

    Raised when resuming against different data, a different parameter
    set, or an unreadable/older-format checkpoint directory.
    """


class ServeError(ReproError, RuntimeError):
    """A clustering-service operation failed (unknown dataset, closed
    service, malformed spool request, ...)."""


class AdmissionError(ServeError):
    """The service refused to enqueue a request (admission control).

    Raised at submit time when the queue is full, the modeled-device
    backlog exceeds the configured budget, or the request could never
    fit the modeled card's memory.  Carries ``reason`` (``"queue"``,
    ``"backlog"``, or ``"memory"``) so clients can distinguish
    back-off-and-retry conditions from permanently infeasible requests.
    """

    def __init__(self, message: str, reason: str = "") -> None:
        super().__init__(message)
        self.reason = reason


class PostmortemError(ReproError, RuntimeError):
    """A postmortem bundle is missing, malformed, or not replayable.

    Raised by :mod:`repro.obs.postmortem` when a bundle fails schema
    validation, references data that was not embedded, or lacks the job
    context needed for ``repro postmortem --replay``.
    """


class ResilienceExhaustedError(ReproError, RuntimeError):
    """Retries and the degradation ladder were exhausted without success.

    Carries the final underlying error as ``last_error`` and the list of
    :class:`~repro.resilience.runner.ResilienceEvent` records describing
    every retry/degradation attempted as ``events``.
    """

    def __init__(
        self, message: str, last_error: BaseException | None = None,
        events: list | None = None,
    ) -> None:
        super().__init__(message)
        self.last_error = last_error
        self.events = events if events is not None else []
