"""Algorithm parameters for PROCLUS and its variants.

The parameter names follow the paper's notation (Table 1):

===============  =====================================================
paper            here
===============  =====================================================
``k``            :attr:`ProclusParams.k`
``l``            :attr:`ProclusParams.l`
``A``            :attr:`ProclusParams.a`
``B``            :attr:`ProclusParams.b`
``minDev``       :attr:`ProclusParams.min_deviation`
``itrPat``       :attr:`ProclusParams.patience`
===============  =====================================================

The defaults are the paper's experimental defaults (Section 5):
``k=10, l=5, A=100, B=10, minDev=0.7, itrPat=5``.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, replace
from typing import Iterator

from .exceptions import ParameterError

__all__ = ["ProclusParams", "ParameterGrid"]


def _require_int(name: str, value: object) -> None:
    """Typed rejection of non-integer parameters (bools included).

    Without this, a string or None slips into the range comparisons and
    surfaces as a bare ``TypeError`` — the validation audit requires
    every bad input to raise a :mod:`repro.exceptions` type.
    """
    if not isinstance(value, numbers.Integral) or isinstance(value, bool):
        raise ParameterError(
            f"{name} must be an integer, got {type(value).__name__}"
        )


@dataclass(frozen=True, slots=True)
class ProclusParams:
    """Validated PROCLUS parameter set.

    Parameters
    ----------
    k:
        Number of clusters to find.
    l:
        Average number of dimensions per cluster subspace.  Must be at
        least 2 because PROCLUS assigns every medoid two dimensions
        before distributing the remaining ``k*l - 2k`` greedily.
    a:
        Sample-size constant *A*; the initialization phase draws a
        random sample ``Data'`` of size ``A*k``.
    b:
        Potential-medoid constant *B*; ``B*k`` points are greedily
        selected from ``Data'``.  Must satisfy ``1 <= b <= a``.
    min_deviation:
        *minDev*; a medoid is "bad" when its cluster holds fewer than
        ``n/k * min_deviation`` points.
    patience:
        *itrPat*; the iterative phase stops after this many consecutive
        iterations without improvement of the best cost.
    max_iterations:
        Safety bound on the total number of iterations of the iterative
        phase (not part of the original algorithm; generous default).
    """

    k: int = 10
    l: int = 5
    a: int = 100
    b: int = 10
    min_deviation: float = 0.7
    patience: int = 5
    max_iterations: int = 500
    #: Which medoids count as "bad" each iteration.  ``"paper"`` follows
    #: this paper's description (clusters below the ``n/k * minDev``
    #: threshold, or the single smallest when none is); ``"original"``
    #: follows Aggarwal et al. 1999, where the smallest cluster's medoid
    #: is *always* bad in addition to the below-threshold ones.
    bad_medoid_rule: str = "paper"

    def __post_init__(self) -> None:
        for name in ("k", "l", "a", "b", "patience", "max_iterations"):
            _require_int(name, getattr(self, name))
        if (
            not isinstance(self.min_deviation, numbers.Real)
            or isinstance(self.min_deviation, bool)
        ):
            raise ParameterError(
                f"min_deviation must be a real number, "
                f"got {type(self.min_deviation).__name__}"
            )
        if self.k < 1:
            raise ParameterError(f"k must be >= 1, got {self.k}")
        if self.l < 2:
            raise ParameterError(f"l must be >= 2, got {self.l}")
        if self.b < 1:
            raise ParameterError(f"B must be >= 1, got {self.b}")
        if self.a < self.b:
            raise ParameterError(
                f"A must be >= B so the greedy pick fits in the sample; "
                f"got A={self.a}, B={self.b}"
            )
        if not 0.0 < self.min_deviation <= 1.0:
            raise ParameterError(
                f"min_deviation must be in (0, 1], got {self.min_deviation}"
            )
        if self.patience < 1:
            raise ParameterError(f"patience must be >= 1, got {self.patience}")
        if self.max_iterations < 1:
            raise ParameterError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.bad_medoid_rule not in ("paper", "original"):
            raise ParameterError(
                f"bad_medoid_rule must be 'paper' or 'original', "
                f"got {self.bad_medoid_rule!r}"
            )

    @property
    def sample_size(self) -> int:
        """Size ``A*k`` of the random sample ``Data'``."""
        return self.a * self.k

    @property
    def num_potential_medoids(self) -> int:
        """Size ``B*k`` of the greedily selected potential medoid set ``M``."""
        return self.b * self.k

    @property
    def total_dimensions(self) -> int:
        """Total number ``k*l`` of dimensions distributed among clusters."""
        return self.k * self.l

    def effective_sample_size(self, n: int) -> int:
        """Size of ``Data'`` for an ``n``-point dataset: ``min(A*k, n)``.

        The paper's sweeps include datasets smaller than ``A*k`` (e.g.
        n = 2^9 with A*k = 1000), in which case the sample is the whole
        dataset.
        """
        return min(self.sample_size, n)

    def effective_num_potential(self, n: int) -> int:
        """Number of potential medoids: ``min(B*k, |Data'|)``."""
        return min(self.num_potential_medoids, self.effective_sample_size(n))

    def validate_against_data(self, n: int, d: int) -> None:
        """Check that this parameter set is feasible for an ``n x d`` dataset."""
        if self.k > self.effective_num_potential(n):
            raise ParameterError(
                f"k = {self.k} exceeds the number of potential medoids "
                f"{self.effective_num_potential(n)} available for n = {n}"
            )
        if self.l > d:
            raise ParameterError(
                f"l = {self.l} exceeds data dimensionality d = {d}"
            )

    def with_(self, **changes: object) -> "ProclusParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True, slots=True)
class ParameterGrid:
    """A grid of ``(k, l)`` combinations for multi-parameter studies.

    The paper's Section 5.3 evaluates 9 combinations of ``k`` and ``l``.
    The grid is ordered with the *largest* ``k`` first because the
    multi-parameter strategies pick the potential medoids once for the
    largest ``k`` and reuse them for smaller settings.
    """

    ks: tuple[int, ...] = (12, 10, 8)
    ls: tuple[int, ...] = (7, 5, 3)
    base: ProclusParams = ProclusParams()

    def __post_init__(self) -> None:
        if not self.ks or not self.ls:
            raise ParameterError("parameter grid must contain at least one k and one l")
        for value in (*self.ks, *self.ls):
            _require_int("grid entries", value)
        if any(k < 1 for k in self.ks):
            raise ParameterError(f"all k values must be >= 1, got {self.ks}")
        if any(l < 2 for l in self.ls):
            raise ParameterError(f"all l values must be >= 2, got {self.ls}")

    @property
    def max_k(self) -> int:
        """The largest ``k`` in the grid (drives the shared medoid pick)."""
        return max(self.ks)

    def __len__(self) -> int:
        return len(self.ks) * len(self.ls)

    def __iter__(self) -> Iterator[ProclusParams]:
        """Yield parameter sets, largest ``k`` first, then each ``l``."""
        for k in sorted(self.ks, reverse=True):
            for l in sorted(self.ls, reverse=True):
                yield self.base.with_(k=k, l=l)
