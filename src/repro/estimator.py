"""Scikit-learn-style estimator interface.

Downstream code that speaks the fit/predict idiom can use
:class:`PROCLUS` instead of the functional API::

    from repro.estimator import PROCLUS

    model = PROCLUS(n_clusters=10, n_dimensions=5, backend="gpu-fast")
    labels = model.fit_predict(X)          # X is min-max normalized for you
    model.cluster_subspaces_               # the D_i per cluster
    model.predict(X_new)                   # place new points

The estimator follows the sklearn conventions that make sense here:
constructor stores hyperparameters only, ``fit`` computes and exposes
trailing-underscore attributes, ``get_params``/``set_params`` support
grid-search-style tooling.  (There is no scikit-learn dependency — the
protocol is implemented directly.)
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .core.api import BACKENDS, proclus
from .core.predict import assign_new_points
from .data.normalize import minmax_normalize
from .exceptions import ParameterError
from .params import ProclusParams
from .result import ProclusResult

__all__ = ["PROCLUS"]


class PROCLUS:
    """Projected clustering estimator (PROCLUS family).

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    n_dimensions:
        Average subspace dimensionality ``l`` (>= 2).
    backend:
        Algorithm variant, see :data:`repro.BACKENDS`.
    n_runs:
        Restarts with distinct seeds; the lowest-cost clustering wins
        (PROCLUS is a randomized search — the paper's protocol).
    random_state:
        Base seed; run ``r`` uses ``random_state + r``.
    normalize:
        Min-max normalize inputs (fit range is reused by ``predict``).
    a, b, min_deviation, patience:
        The remaining PROCLUS parameters (paper defaults).
    """

    def __init__(
        self,
        n_clusters: int = 10,
        n_dimensions: int = 5,
        backend: str = "gpu-fast",
        n_runs: int = 1,
        random_state: int = 0,
        normalize: bool = True,
        a: int = 100,
        b: int = 10,
        min_deviation: float = 0.7,
        patience: int = 5,
    ) -> None:
        self.n_clusters = n_clusters
        self.n_dimensions = n_dimensions
        self.backend = backend
        self.n_runs = n_runs
        self.random_state = random_state
        self.normalize = normalize
        self.a = a
        self.b = b
        self.min_deviation = min_deviation
        self.patience = patience

    # ------------------------------------------------------------------
    # sklearn-protocol plumbing
    # ------------------------------------------------------------------
    _PARAM_NAMES = (
        "n_clusters", "n_dimensions", "backend", "n_runs", "random_state",
        "normalize", "a", "b", "min_deviation", "patience",
    )

    def get_params(self, deep: bool = True) -> dict[str, Any]:
        """Hyperparameters as a dict (sklearn convention)."""
        return {name: getattr(self, name) for name in self._PARAM_NAMES}

    def set_params(self, **params: Any) -> "PROCLUS":
        """Update hyperparameters; unknown names raise."""
        for name, value in params.items():
            if name not in self._PARAM_NAMES:
                raise ParameterError(
                    f"unknown parameter {name!r}; valid: {self._PARAM_NAMES}"
                )
            setattr(self, name, value)
        return self

    def _make_params(self) -> ProclusParams:
        return ProclusParams(
            k=self.n_clusters,
            l=self.n_dimensions,
            a=self.a,
            b=self.b,
            min_deviation=self.min_deviation,
            patience=self.patience,
        )

    def _prepare(self, x: np.ndarray, fit: bool) -> np.ndarray:
        x = np.asarray(x)
        if not self.normalize:
            return x
        if fit:
            x = np.ascontiguousarray(x, dtype=np.float32)
            self._mins_ = x.min(axis=0)
            spans = x.max(axis=0) - self._mins_
            spans[spans == 0] = 1.0
            self._spans_ = spans
            return minmax_normalize(x)
        scaled = (x.astype(np.float32) - self._mins_) / self._spans_
        return np.clip(scaled, 0.0, 1.0).astype(np.float32)

    # ------------------------------------------------------------------
    # Estimator API
    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray) -> "PROCLUS":
        """Cluster ``x``; exposes ``labels_`` and friends."""
        if self.backend not in BACKENDS:
            raise ParameterError(
                f"unknown backend {self.backend!r}; "
                f"available: {', '.join(sorted(BACKENDS))}"
            )
        if self.n_runs < 1:
            raise ParameterError(f"n_runs must be >= 1, got {self.n_runs}")
        data = self._prepare(x, fit=True)
        params = self._make_params()
        best: ProclusResult | None = None
        for run in range(self.n_runs):
            result = proclus(
                data,
                backend=self.backend,
                params=params,
                seed=self.random_state + run,
            )
            if best is None or result.cost < best.cost:
                best = result
        assert best is not None
        self._train_data_ = data
        self.result_ = best
        self.labels_ = best.labels
        self.medoid_indices_ = best.medoids
        self.cluster_subspaces_ = best.dimensions
        self.cost_ = best.cost
        self.n_iter_ = best.iterations
        self.n_outliers_ = best.n_outliers
        return self

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        """Fit and return the training labels."""
        return self.fit(x).labels_

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Assign new points to the fitted clusters (outlier rule applies)."""
        self._check_fitted()
        data = self._prepare(x, fit=False)
        return assign_new_points(self.result_, self._train_data_, data)

    def _check_fitted(self) -> None:
        if not hasattr(self, "result_"):
            raise ParameterError("estimator is not fitted; call fit() first")

    def __repr__(self) -> str:
        args = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self._PARAM_NAMES
        )
        return f"PROCLUS({args})"
