"""Multi-device facade behind the single-device :class:`Device` API.

The GPU engines talk to exactly one device object: they allocate named
arrays, upload the dataset, and record kernel launches.  A
:class:`FleetDevice` satisfies that contract while running two books:

* a **logical device** replays every call unchanged (full geometry,
  solo spec, no tracing, no fault injection), so the run's
  ``RunStats.counters`` are bit-identical to the solo run's;
* **shard devices** — one :class:`ShardDevice` per fleet member with a
  non-empty point range — receive the physically sharded version:
  row-proportional work splits (exact largest-remainder apportionment,
  so the per-device ledgers sum back to the solo totals), per-device
  Perfetto tracks, per-device memory managers (a shard OOM raises the
  usual :class:`~repro.exceptions.DeviceOutOfMemoryError`), and
  fault-injection sites suffixed ``@dev{i}`` so chaos tests can target
  one shard.

Kernels are classified by name: per-point kernels shard; the small
medoid/dimension kernels run on the root shard (device 0 of the
members holding points).  Transitions between the two drive the
collectives: accumulated partial sums are all-reduced before the next
root kernel consumes them, and root-computed parameters (medoids,
selected dimensions) are broadcast before the next sharded kernel.
Every collective is a barrier: all shard clocks jump to the maximum
plus the modeled communication time, which is exactly how the fleet
makespan (critical path) accrues on the :class:`FleetModel`.
"""

from __future__ import annotations

from dataclasses import replace
from fractions import Fraction

import numpy as np

from ..exceptions import ParameterError
from ..gpu.device import Device
from ..gpu.memory import DeviceArray
from ..hardware.specs import GpuSpec
from ..obs.export import kernel_pipeline
from ..obs.tracer import NULL_TRACER, Tracer
from .fleet import Fleet
from .interconnect import allreduce_seconds, broadcast_seconds
from .model import FleetModel
from .partition import ShardPlan, split_exact

__all__ = ["ShardDevice", "LogicalDevice", "FleetDevice", "SHARDED_KERNELS"]

#: Kernels whose work is proportional to the points they touch — these
#: split across the shards.  Everything else (greedy over the sample,
#: the k x k medoid kernels, dimension selection, bookkeeping) runs on
#: the root shard at full size.
SHARDED_KERNELS = frozenset(
    {
        "compute_l.distances",
        "compute_l.build_l",
        "find_dimensions.x_sums",
        "assign_points",
        "evaluate_cluster",
        "refinement.x_sums",
        "remove_outliers.check",
    }
)


class ShardDevice(Device):
    """One fleet member: its own model, memory, and Perfetto tracks."""

    def __init__(
        self,
        spec: GpuSpec,
        model,
        tracer: Tracer,
        index: int,
    ) -> None:
        super().__init__(spec, model=model, tracer=tracer)
        self.index = index

    def _pipeline(self, name: str) -> str:
        base = name.split("@", 1)[0]
        return f"gpu{self.index}:{kernel_pipeline(base)}"

    def _transfer_pipeline(self) -> str:
        return f"gpu{self.index}:transfer"


class LogicalDevice(Device):
    """Accounting-only replay of the solo run's device activity.

    Never traces, never consults the fault injector (faults fire on
    the physical shards), and its memory capacity is widened to the
    fleet's total so a job only a *fleet* can hold still replays its
    solo launch stream for the counter book.
    """

    fires_injector = False


class FleetDevice:
    """The :class:`Device`-shaped facade the fleet engines launch into."""

    def __init__(
        self,
        fleet: Fleet,
        model: FleetModel,
        tracer: Tracer,
        plan: ShardPlan,
    ) -> None:
        self.fleet = fleet
        self.model = model
        self.tracer = tracer
        self.plan = plan
        self.n = plan.n
        logical_spec = replace(
            model.logical.spec,
            memory_bytes=max(
                model.logical.spec.memory_bytes,
                fleet.total_usable_bytes + model.logical.spec.reserved_bytes,
            ),
        )
        self.logical = LogicalDevice(
            logical_spec, model=model.logical, tracer=NULL_TRACER
        )
        self.clock_offset = tracer.device_offset() if tracer.enabled else 0.0
        #: One ShardDevice per member holding points; None for members
        #: with an empty range (zero weight / zero capacity).
        self.shards: list[ShardDevice | None] = []
        for index, (spec, count) in enumerate(zip(fleet.specs, plan.counts)):
            if count > 0:
                shard = ShardDevice(
                    spec, model=model.shards[index], tracer=tracer, index=index
                )
                shard.clock_offset = self.clock_offset
                self.shards.append(shard)
            else:
                self.shards.append(None)
        self._active = [shard for shard in self.shards if shard is not None]
        self._active_specs = tuple(shard.spec for shard in self._active)
        self._active_counts = tuple(
            count for count in plan.counts if count > 0
        )
        #: Bytes of distributed partial state awaiting reduction, and
        #: whether the root holds parameters the shards have not seen.
        self._pending_reduce = 0.0
        self._root_fresh = False
        self._reduce_bytes: dict[str, float] = {}
        self._bcast_bytes: dict[str, float] = {}
        self._default_bcast = 0.0
        #: Collective seconds accrued inside the current launch() call
        #: (exact), feeding the fleet cost ledger's comm component.
        self._comm_this_call = Fraction()
        #: Speculative-execution straggler threshold (None = disabled).
        self._spec_threshold: float | None = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure_collectives(
        self,
        reduce_bytes: dict[str, float],
        bcast_bytes: dict[str, float],
        default_bcast: float = 0.0,
    ) -> None:
        """Install the per-kernel collective payload sizes.

        ``reduce_bytes[name]`` — partial-sum bytes a sharded kernel
        leaves distributed (all-reduced before the next root kernel);
        ``bcast_bytes[name]`` — parameter bytes a sharded kernel needs
        from the root (broadcast when the root state is fresh).
        """
        self._reduce_bytes = dict(reduce_bytes)
        self._bcast_bytes = dict(bcast_bytes)
        self._default_bcast = float(default_bcast)

    def configure_speculation(self, threshold: float | None) -> None:
        """Enable speculative straggler re-execution.

        When one member's share of a sharded launch takes more than
        ``threshold`` times the mean member launch time, its split is
        replayed as a backup on the fastest member (fault site
        ``{name}+spec@dev{j}``); if the backup finishes before the
        straggler, the straggler's completion is capped at the backup's
        and the win is counted.  This is purely a timing-model feature:
        results come off the logical book either way, so speculation
        never changes the clustering — only the modeled makespan and
        the ``fleet.speculative_*`` counters.  ``None`` disables it
        (the default, keeping benchmark baselines unchanged).
        """
        if threshold is not None and not float(threshold) > 1.0:
            raise ParameterError(
                f"speculation threshold must be > 1.0, got {threshold}"
            )
        self._spec_threshold = None if threshold is None else float(threshold)

    # ------------------------------------------------------------------
    # Clocks
    # ------------------------------------------------------------------
    def _elapsed(self, shard: ShardDevice) -> float:
        return (
            shard.clock_offset - self.clock_offset + shard.model.total_seconds
        )

    def _fleet_elapsed(self) -> float:
        if not self._active:
            return 0.0
        return max(self._elapsed(shard) for shard in self._active)

    def _collective(self, kind: str, nbytes: float, phase: str) -> None:
        """Barrier all shard clocks at ``max + comm`` and account it."""
        if len(self._active) < 2:
            return
        if kind == "allreduce":
            seconds = allreduce_seconds(nbytes, self._active_specs)
        else:
            seconds = broadcast_seconds(nbytes, self._active_specs)
        target = self._fleet_elapsed() + seconds
        for shard in self._active:
            elapsed = self._elapsed(shard)
            wait = target - elapsed
            if wait <= 0:
                continue
            if self.tracer.enabled:
                self.tracer.kernel(
                    f"comm.{kind}@dev{shard.index}",
                    f"gpu{shard.index}:comm",
                    phase,
                    self.clock_offset + elapsed,
                    wait,
                    clock="modeled",
                )
            self.model.sync_seconds[shard.index] += wait
            shard.clock_offset = (
                self.clock_offset + target - shard.model.total_seconds
            )
        counter = self.model.counter
        counter.add("fleet.comm_bytes", nbytes)
        counter.add("fleet.comm_seconds", seconds)
        counter.add(f"fleet.{kind}_steps", 1)
        self._comm_this_call += Fraction(seconds)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def _split_shape(
        self, shape: tuple[int, ...], count: int
    ) -> tuple[int, ...]:
        """Shard ``shape`` along its first n-sized axis (replicate else)."""
        for axis, size in enumerate(shape):
            if size == self.n:
                sharded = list(shape)
                sharded[axis] = count
                return tuple(sharded)
        return shape

    def alloc(
        self,
        shape,
        dtype=np.float32,
        name: str = "unnamed",
        fill: float | None = None,
    ) -> DeviceArray:
        """Allocate on every shard (split rows) and the logical book."""
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        array = self.logical.alloc(shape, dtype=dtype, name=name, fill=fill)
        for shard, count in zip(self._active, self._active_counts):
            shard.alloc(
                self._split_shape(tuple(shape), count),
                dtype=dtype,
                name=f"{name}@dev{shard.index}",
                fill=fill,
            )
        return array

    def to_device(
        self, host: np.ndarray, name: str, phase: str = "transfer"
    ) -> DeviceArray:
        """Upload ``host`` — each shard receives its row slice."""
        before = self._fleet_elapsed()
        array = self.logical.to_device(host, name, phase)
        axis = next(
            (a for a, size in enumerate(host.shape) if size == self.n), None
        )
        for shard, count in zip(self._active, self._active_counts):
            if axis is None:
                piece = host
            else:
                piece = self.plan.shard(host, shard.index, axis=axis)
            shard.to_device(piece, f"{name}@dev{shard.index}", phase)
        self.model.account(
            "transfer", f"h2d:{name}", phase,
            self._fleet_elapsed() - before, residual="transfer",
        )
        return array

    def to_host(self, array: DeviceArray, phase: str = "transfer") -> np.ndarray:
        before = self._fleet_elapsed()
        host = self.logical.to_host(array, phase)
        self.model.account(
            "transfer", f"d2h:{array.name}", phase,
            self._fleet_elapsed() - before, residual="transfer",
        )
        return host

    @property
    def memory(self):
        return _FleetMemory(
            [self.logical.memory]
            + [shard.memory for shard in self._active]
        )

    @property
    def peak_bytes(self) -> int:
        """Largest per-device peak footprint (the binding constraint)."""
        if not self._active:
            return self.logical.peak_bytes
        return max(shard.peak_bytes for shard in self._active)

    def peak_bytes_per_device(self) -> tuple[int, ...]:
        """Peak footprint of every fleet member (0 for empty shards)."""
        return tuple(
            0 if shard is None else shard.peak_bytes for shard in self.shards
        )

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    @staticmethod
    def _split_work(value: float, counts: tuple[int, ...]) -> tuple[float, ...]:
        """Split an (integral-valued) work quantity exactly by rows."""
        total = int(round(value))
        if total <= 0 or abs(value - total) > 1e-6:
            share = sum(counts)
            return tuple(value * count / share for count in counts)
        return tuple(
            float(part) for part in split_exact(total, [float(c) for c in counts])
        )

    def launch(
        self,
        name: str,
        phase: str,
        grid_blocks: int,
        threads_per_block: int,
        flops: float = 0.0,
        gmem_bytes: float = 0.0,
        atomic_ops: float = 0.0,
        smem_bytes_per_block: int = 0,
        registers_per_thread: int = 32,
        ipc: float = 1.0,
    ) -> float:
        """Replay logically; dispatch physically; accrue fleet time."""
        before = self._fleet_elapsed()
        self._comm_this_call = Fraction()
        self.logical.launch(
            name, phase, grid_blocks, threads_per_block,
            flops=flops, gmem_bytes=gmem_bytes, atomic_ops=atomic_ops,
            smem_bytes_per_block=smem_bytes_per_block,
            registers_per_thread=registers_per_thread, ipc=ipc,
        )
        if name in SHARDED_KERNELS and len(self._active) > 0:
            if self._root_fresh:
                payload = self._bcast_bytes.get(name, self._default_bcast)
                self._collective("broadcast", payload, phase)
                self._root_fresh = False
            flops_split = self._split_work(flops, self._active_counts)
            gmem_split = self._split_work(gmem_bytes, self._active_counts)
            atomic_split = self._split_work(atomic_ops, self._active_counts)
            total_rows = sum(self._active_counts)
            launch_secs = []
            for i, shard in enumerate(self._active):
                fraction = self._active_counts[i] / total_rows
                launch_secs.append(shard.launch(
                    f"{name}@dev{shard.index}",
                    phase,
                    grid_blocks=max(
                        1, int(np.ceil(grid_blocks * fraction))
                    ),
                    threads_per_block=threads_per_block,
                    flops=flops_split[i],
                    gmem_bytes=gmem_split[i],
                    atomic_ops=atomic_split[i],
                    smem_bytes_per_block=smem_bytes_per_block,
                    registers_per_thread=registers_per_thread,
                    ipc=ipc,
                ))
            self._maybe_speculate(
                name, phase, launch_secs,
                (flops_split, gmem_split, atomic_split),
                grid_blocks, threads_per_block,
                smem_bytes_per_block, registers_per_thread, ipc,
            )
            self._pending_reduce += self._reduce_bytes.get(name, 0.0)
        else:
            if self._pending_reduce > 0:
                self._collective("allreduce", self._pending_reduce, phase)
                self._pending_reduce = 0.0
            root = self._active[0]
            root.launch(
                f"{name}@dev{root.index}",
                phase,
                grid_blocks=grid_blocks,
                threads_per_block=threads_per_block,
                flops=flops,
                gmem_bytes=gmem_bytes,
                atomic_ops=atomic_ops,
                smem_bytes_per_block=smem_bytes_per_block,
                registers_per_thread=registers_per_thread,
                ipc=ipc,
            )
            self._root_fresh = True
        delta = self._fleet_elapsed() - before
        # The makespan delta splits exactly into collective time (the
        # barrier pushed every clock forward by the comm seconds) and
        # the critical-path compute growth that followed.
        comm = min(self._comm_this_call, Fraction(delta))
        return self.model.account(
            "fleet", name, phase, delta,
            parts=(("comm", comm),), residual="compute",
        )

    def _maybe_speculate(
        self,
        name: str,
        phase: str,
        launch_secs: list[float],
        splits: tuple[tuple[float, ...], ...],
        grid_blocks: int,
        threads_per_block: int,
        smem_bytes_per_block: int,
        registers_per_thread: int,
        ipc: float,
    ) -> None:
        """Re-execute the straggler's split on the fastest member.

        Fires only when speculation is configured, at least two members
        hold points, and the slowest member's launch exceeded
        ``threshold`` times the mean.  The backup runs under the fault
        site ``{name}+spec@dev{j}`` (the ``@dev{j}`` suffix stays last
        so injector device tags still resolve); a backup that finishes
        before the straggler caps the straggler's completion clock,
        which is exactly the makespan the barrier collectives observe.
        """
        if self._spec_threshold is None or len(self._active) < 2:
            return
        mean = sum(launch_secs) / len(launch_secs)
        if mean <= 0:
            return
        slow = max(range(len(launch_secs)), key=launch_secs.__getitem__)
        if launch_secs[slow] / mean <= self._spec_threshold:
            return
        fast = min(
            (i for i in range(len(launch_secs)) if i != slow),
            key=launch_secs.__getitem__,
        )
        straggler = self._active[slow]
        backup = self._active[fast]
        counter = self.model.counter
        counter.add("fleet.speculative_launches", 1)
        fraction = self._active_counts[slow] / sum(self._active_counts)
        backup.launch(
            f"{name}+spec@dev{backup.index}",
            phase,
            grid_blocks=max(1, int(np.ceil(grid_blocks * fraction))),
            threads_per_block=threads_per_block,
            flops=splits[0][slow],
            gmem_bytes=splits[1][slow],
            atomic_ops=splits[2][slow],
            smem_bytes_per_block=smem_bytes_per_block,
            registers_per_thread=registers_per_thread,
            ipc=ipc,
        )
        straggler_done = self._elapsed(straggler)
        backup_done = self._elapsed(backup)
        if backup_done < straggler_done:
            counter.add("fleet.speculative_wins", 1)
            counter.add(
                "fleet.speculative_saved_seconds",
                straggler_done - backup_done,
            )
            straggler.clock_offset = (
                self.clock_offset + backup_done
                - straggler.model.total_seconds
            )

    @property
    def total_seconds(self) -> float:
        return self.model.total_seconds


class _FleetMemory:
    """free_all() across the logical and every shard memory manager."""

    def __init__(self, managers) -> None:
        self.managers = managers

    def free_all(self) -> None:
        for manager in self.managers:
            manager.free_all()
