"""Deterministic point partitioning and exact partial-sum merging.

The fleet shards the ``n`` points of one job across ``D`` modeled
devices as *contiguous row ranges* — the layout NCCL-style data
parallelism uses, and the one that keeps every per-row kernel
(distances, assignment) trivially order-preserving: concatenating the
per-shard outputs in device order reproduces the solo output bit for
bit.

Two primitives carry the determinism contract:

* :func:`split_exact` — largest-remainder integer apportionment.  The
  returned counts always sum to the total *exactly* (no float drift),
  respect zero weights (a zero-capacity device gets zero points), and
  are invariant to the absolute scale of the weights.
* :func:`tree_merge` — pairwise reduction of per-shard partial sums in
  a fixed order.  Because every accumulated term is a float32 value in
  ``[0, 2)`` summed into float64 (:mod:`repro.core.distance`), the
  partial sums are exact and *any* merge order gives the same bits;
  fixing the tree order makes that property testable and keeps the
  merge independent of device count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError

__all__ = ["ShardPlan", "split_exact", "tree_merge"]


def split_exact(total: int, weights: tuple[float, ...] | list[float]) -> tuple[int, ...]:
    """Apportion ``total`` items over ``weights`` (largest remainder).

    Returns integer counts summing to exactly ``total``.  Zero-weight
    entries receive zero items.  Ties in the fractional remainders are
    broken by lower index, so the split is fully deterministic.
    """
    if not isinstance(total, (int, np.integer)) or isinstance(total, bool):
        raise ParameterError(f"total must be an int, got {type(total).__name__}")
    if total < 0:
        raise ParameterError(f"total must be >= 0, got {total}")
    weights = [float(w) for w in weights]
    if not weights:
        raise ParameterError("split_exact needs at least one weight")
    if any(w < 0 for w in weights):
        raise ParameterError(f"weights must be >= 0, got {weights}")
    weight_sum = sum(weights)
    if weight_sum <= 0:
        raise ParameterError("at least one weight must be positive")
    quotas = [total * w / weight_sum for w in weights]
    counts = [int(q) for q in quotas]
    shortfall = total - sum(counts)
    # Hand the leftover items to the largest fractional remainders
    # (ties -> lower index), never to zero-weight entries.
    order = sorted(
        range(len(weights)),
        key=lambda i: (-(quotas[i] - counts[i]), i),
    )
    for i in order[:shortfall]:
        if weights[i] > 0:
            counts[i] += 1
        else:  # pragma: no cover - quotas of zero weights are exact
            shortfall += 1
    assigned = sum(counts)
    if assigned != total:  # pragma: no cover - defensive
        # Residual (only reachable when every remainder belongs to a
        # zero-weight entry, which integer quotas prevent).
        for i in order:
            if weights[i] > 0:
                counts[i] += total - assigned
                break
    return tuple(counts)


def tree_merge(partials: list[np.ndarray]) -> np.ndarray:
    """Merge per-shard partial sums with a fixed pairwise tree.

    ``partials`` are float64 arrays of identical shape (one per shard,
    in device order).  Adjacent pairs are added until one remains —
    the reduction order a ring/tree all-reduce would realize.  Under
    the exact-accumulation invariant the result is bit-identical to
    any other order, including the solo single-pass sum.
    """
    if not partials:
        raise ParameterError("tree_merge needs at least one partial")
    level = [np.asarray(p, dtype=np.float64) for p in partials]
    while len(level) > 1:
        merged = []
        for i in range(0, len(level) - 1, 2):
            merged.append(level[i] + level[i + 1])
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0]


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """Contiguous row ranges assigning each data point to one device.

    ``counts[i]`` points go to device ``i``; device ``i`` owns rows
    ``[offsets[i], offsets[i] + counts[i])``.  Built by
    :meth:`repro.fleet.fleet.Fleet.shard_plan`.
    """

    n: int
    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if sum(self.counts) != self.n:
            raise ParameterError(
                f"shard counts {self.counts} do not cover n={self.n}"
            )
        if any(c < 0 for c in self.counts):
            raise ParameterError(f"negative shard count in {self.counts}")

    @property
    def num_devices(self) -> int:
        return len(self.counts)

    @property
    def offsets(self) -> tuple[int, ...]:
        """Start row of each device's range."""
        out = []
        start = 0
        for count in self.counts:
            out.append(start)
            start += count
        return tuple(out)

    def ranges(self) -> tuple[tuple[int, int], ...]:
        """Per-device ``(start, stop)`` row ranges (empty allowed)."""
        return tuple(
            (offset, offset + count)
            for offset, count in zip(self.offsets, self.counts)
        )

    def shard(self, array: np.ndarray, index: int, axis: int = 0) -> np.ndarray:
        """View of ``array`` restricted to device ``index``'s rows."""
        start, stop = self.ranges()[index]
        slicer = [slice(None)] * array.ndim
        slicer[axis] = slice(start, stop)
        return array[tuple(slicer)]
