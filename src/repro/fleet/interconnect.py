"""Interconnect cost model for NCCL-style collective steps.

The fleet's reductions (``H`` sums, cluster sizes, evaluate partials)
and its parameter broadcasts (selected dimensions, medoid points) are
modeled as ring all-reduce and tree broadcast collectives over the
:class:`~repro.hardware.specs.GpuSpec` interconnect fields:

* ring all-reduce of ``B`` bytes over ``D`` devices moves
  ``2 * (D - 1) / D * B`` bytes per device in ``2 * (D - 1)`` latency
  hops — the standard bandwidth-optimal schedule;
* tree broadcast moves ``B`` bytes in ``ceil(log2 D)`` hops.

A link between two devices runs at the *slower* endpoint's bandwidth
and the *larger* endpoint latency, so a heterogeneous
PCIe-plus-NVLink fleet is paced by its PCIe members — the pessimistic
(and honest) assumption for a mixed 1660 Ti / 3090 box.
"""

from __future__ import annotations

import math

from ..hardware.specs import GpuSpec

__all__ = [
    "link_bandwidth",
    "link_latency",
    "allreduce_seconds",
    "broadcast_seconds",
]


def link_bandwidth(specs: tuple[GpuSpec, ...]) -> float:
    """Sustained collective bandwidth: the slowest member's link."""
    return min(spec.interconnect_bandwidth_bytes_per_s for spec in specs)


def link_latency(specs: tuple[GpuSpec, ...]) -> float:
    """Per-hop latency: the slowest member's."""
    return max(spec.interconnect_latency_s for spec in specs)


def allreduce_seconds(nbytes: float, specs: tuple[GpuSpec, ...]) -> float:
    """Modeled seconds of a ring all-reduce of ``nbytes`` over ``specs``."""
    devices = len(specs)
    if devices < 2 or nbytes <= 0:
        return 0.0
    bandwidth = link_bandwidth(specs)
    hops = 2 * (devices - 1)
    return (hops / devices) * (nbytes / bandwidth) + hops * link_latency(specs)


def broadcast_seconds(nbytes: float, specs: tuple[GpuSpec, ...]) -> float:
    """Modeled seconds of a tree broadcast of ``nbytes`` over ``specs``."""
    devices = len(specs)
    if devices < 2 or nbytes <= 0:
        return 0.0
    hops = math.ceil(math.log2(devices))
    return nbytes / link_bandwidth(specs) + hops * link_latency(specs)
