"""Elastic fleet recovery: lose a card mid-run, keep the answer.

The fleet backends (:mod:`repro.fleet.engine`) shard one job across D
modeled devices; this module is what happens when one of them dies.
Three pieces:

* :func:`degraded_fleet` / :func:`plan_recovery` — rebuild the shard
  plan over the surviving members.  The degraded fleet keeps the dead
  member *in place* with weight zero (so device numbering — and hence
  every ``@dev{i}`` fault site and trace track — stays stable) and
  re-apportions its rows over the survivors with the same
  largest-remainder :func:`~repro.fleet.partition.split_exact` the
  original plan used.  By the exact-partial-sum + fixed
  ``tree_merge`` determinism contract, the re-sharded run returns the
  bit-identical clustering;
* :class:`DeviceHealth` — the health-aware serving tracker: counts
  consecutive transient errors per member and straggler strikes from
  :func:`~repro.obs.explain.fleetattr.fleet_attribution` output,
  quarantines a member that crosses either threshold, and readmits it
  after a probation period;
* the recovery path itself lives in
  :class:`~repro.resilience.runner.ResilientRunner`: on
  :class:`~repro.exceptions.DeviceLostError` it snapshots what the
  engine persisted (the PR 3 ``IterativeState`` checkpoint, when the
  run checkpoints), swaps the engine's fleet for the survivors, and
  retries the rung — emitting a ``reshard`` resilience span and
  ``fleet.recovery.*`` counters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..exceptions import ParameterError
from .fleet import Fleet
from .partition import ShardPlan

__all__ = [
    "dead_device_indices",
    "active_devices",
    "degraded_fleet",
    "RecoveryPlan",
    "plan_recovery",
    "DeviceHealth",
]

_TAG_RE = re.compile(r"^dev(\d+)$")


def dead_device_indices(tags: Iterable[str]) -> tuple[int, ...]:
    """Member indices named by injector device tags (``"dev1"`` -> 1).

    Unrecognized tags (the solo ``"device"`` tag) are ignored — they
    name no fleet member.
    """
    indices = set()
    for tag in tags:
        match = _TAG_RE.match(tag)
        if match:
            indices.add(int(match.group(1)))
    return tuple(sorted(indices))


def active_devices(fleet: Fleet) -> int:
    """Members actually holding points (positive effective weight)."""
    return sum(1 for weight in fleet.effective_weights() if weight > 0)


def degraded_fleet(fleet: Fleet, dead: Iterable[int]) -> Fleet | None:
    """``fleet`` with the ``dead`` members' weights zeroed in place.

    Keeping dead members in the spec tuple (at weight zero) preserves
    device numbering: the survivors keep their ``@dev{i}`` identities,
    so a schedule that killed ``dev1`` cannot accidentally re-kill a
    renumbered survivor, and per-device ledgers stay comparable across
    the loss.  Returns ``None`` when no member with capacity survives
    (nothing to re-shard onto).
    """
    weights = list(fleet.effective_weights())
    for index in dead:
        if 0 <= int(index) < len(weights):
            weights[int(index)] = 0.0
    if sum(weights) <= 0:
        return None
    return Fleet(specs=fleet.specs, weights=tuple(weights))


@dataclass(frozen=True, slots=True)
class RecoveryPlan:
    """One re-shard decision: who died, who survives, how rows move."""

    fleet: Fleet  #: the fleet as it was before the loss
    dead: tuple[int, ...]  #: member indices lost
    survivors: Fleet  #: same members, dead weights zeroed

    @property
    def active(self) -> int:
        """Surviving members that will hold points."""
        return active_devices(self.survivors)

    def shard_plan(self, n: int) -> ShardPlan:
        """The re-computed exact row partition over the survivors."""
        return self.survivors.shard_plan(n)

    def describe(self) -> str:
        lost = ", ".join(f"dev{i}" for i in self.dead) or "none"
        return (
            f"lost {lost}; re-sharding over "
            f"{self.active} of {self.fleet.num_devices} devices"
        )


def plan_recovery(fleet: Fleet, dead: Iterable[int]) -> RecoveryPlan | None:
    """Build the re-shard plan after losing ``dead`` members.

    Returns ``None`` when recovery within the fleet is impossible
    (every member with capacity is gone) — the caller must degrade to
    a solo rung instead.
    """
    dead_tuple = tuple(sorted({int(i) for i in dead}))
    survivors = degraded_fleet(fleet, dead_tuple)
    if survivors is None:
        return None
    return RecoveryPlan(fleet=fleet, dead=dead_tuple, survivors=survivors)


@dataclass(slots=True)
class _MemberHealth:
    """Mutable per-member health record."""

    consecutive_transients: int = 0
    straggler_strikes: int = 0
    quarantined: bool = False
    probation_left: int = 0
    quarantines: int = 0


class DeviceHealth:
    """Quarantine/readmit tracker for fleet members.

    Two independent triggers quarantine a member:

    * ``transient_threshold`` consecutive transient errors attributed
      to it (a flaky card), reset by any success;
    * ``straggler_strikes`` consecutive fleet runs in which
      :func:`~repro.obs.explain.fleetattr.fleet_attribution` names it
      the straggler with ``straggler_index`` above
      ``straggler_threshold`` (a slow card dragging the barrier).

    A quarantined member sits out ``probation`` observed healthy rounds
    (calls to :meth:`observe_round` — typically one per completed fleet
    job), then is readmitted with cleared counters.  The tracker never
    touches a fleet itself; :meth:`healthy_fleet` derives the degraded
    fleet serving should use, and
    :meth:`~repro.serve.service.ClusterService.quarantine_device`
    applies the same decisions to admission capacity.
    """

    def __init__(
        self,
        devices: int,
        transient_threshold: int = 3,
        straggler_threshold: float = 1.5,
        straggler_strikes: int = 3,
        probation: int = 2,
    ) -> None:
        if devices < 1:
            raise ParameterError(f"devices must be >= 1, got {devices}")
        if transient_threshold < 1:
            raise ParameterError(
                f"transient_threshold must be >= 1, got {transient_threshold}"
            )
        if not straggler_threshold >= 1.0:
            raise ParameterError(
                f"straggler_threshold must be >= 1.0, "
                f"got {straggler_threshold}"
            )
        if straggler_strikes < 1:
            raise ParameterError(
                f"straggler_strikes must be >= 1, got {straggler_strikes}"
            )
        if probation < 1:
            raise ParameterError(f"probation must be >= 1, got {probation}")
        self.devices = devices
        self.transient_threshold = transient_threshold
        self.straggler_threshold = straggler_threshold
        self.straggler_strikes = straggler_strikes
        self.probation = probation
        self._members = [_MemberHealth() for _ in range(devices)]

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _member(self, index: int) -> _MemberHealth:
        if not 0 <= index < self.devices:
            raise ParameterError(
                f"device index {index} out of range for {self.devices} members"
            )
        return self._members[index]

    def record_transient(self, index: int) -> bool:
        """One transient error on member ``index``; True if it just
        crossed the threshold into quarantine."""
        member = self._member(index)
        member.consecutive_transients += 1
        if (
            not member.quarantined
            and member.consecutive_transients >= self.transient_threshold
        ):
            self._quarantine(member)
            return True
        return False

    def record_success(self, index: int) -> None:
        """A successful operation on member ``index`` (resets the
        consecutive-transient count)."""
        member = self._member(index)
        member.consecutive_transients = 0

    def observe_attribution(self, attribution: Mapping) -> int | None:
        """Fold one fleet run's attribution block in.

        Returns the member index just quarantined for straggling, or
        ``None``.  Members other than the named straggler get their
        strike count cleared (straggling must be persistent to strike).
        """
        device = str(attribution.get("straggler_device", "") or "")
        index = None
        match = _TAG_RE.match(device)
        if match:
            index = int(match.group(1))
        over = (
            float(attribution.get("straggler_index", 1.0) or 1.0)
            > self.straggler_threshold
        )
        quarantined = None
        for i, member in enumerate(self._members):
            if i == index and over:
                member.straggler_strikes += 1
                if (
                    not member.quarantined
                    and member.straggler_strikes >= self.straggler_strikes
                ):
                    self._quarantine(member)
                    quarantined = i
            else:
                member.straggler_strikes = 0
        return quarantined

    def observe_round(self) -> tuple[int, ...]:
        """One healthy fleet round completed; advance probation.

        Returns the indices readmitted this round (probation expired).
        """
        readmitted = []
        for index, member in enumerate(self._members):
            if not member.quarantined:
                continue
            member.probation_left -= 1
            if member.probation_left <= 0:
                self.readmit(index)
                readmitted.append(index)
        return tuple(readmitted)

    def _quarantine(self, member: _MemberHealth) -> None:
        member.quarantined = True
        member.probation_left = self.probation
        member.quarantines += 1

    def readmit(self, index: int) -> None:
        """Readmit member ``index`` with cleared counters."""
        member = self._member(index)
        member.quarantined = False
        member.probation_left = 0
        member.consecutive_transients = 0
        member.straggler_strikes = 0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def quarantined(self) -> frozenset[int]:
        """Indices currently quarantined."""
        return frozenset(
            i for i, member in enumerate(self._members) if member.quarantined
        )

    def healthy_fleet(self, fleet: Fleet) -> Fleet | None:
        """``fleet`` minus the quarantined members (None if nobody's left)."""
        if not self.quarantined:
            return fleet
        return degraded_fleet(fleet, self.quarantined)

    def status(self) -> list[dict]:
        """JSON-ready per-member health (for health reports / CLI)."""
        return [
            {
                "device": f"dev{i}",
                "quarantined": member.quarantined,
                "consecutive_transients": member.consecutive_transients,
                "straggler_strikes": member.straggler_strikes,
                "probation_left": member.probation_left,
                "quarantines": member.quarantines,
            }
            for i, member in enumerate(self._members)
        ]
