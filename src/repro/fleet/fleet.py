"""Fleet description: which modeled devices a job may shard across.

A :class:`Fleet` is an ordered tuple of :class:`~repro.hardware.specs.GpuSpec`
(heterogeneous mixes welcome — the canonical example pairs the paper's
GTX 1660 Ti with its RTX 3090).  Points are apportioned in proportion
to each member's modeled throughput so a faster card gets more rows and
the per-iteration barrier waits stay small; a zero-capacity member
(modeled failed/drained card) gets weight zero and hence no points, no
device arrays, and no ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ParameterError
from ..hardware.specs import GTX_1660_TI, RTX_3090, GpuSpec
from .partition import ShardPlan, split_exact

__all__ = ["Fleet", "default_fleet", "mixed_fleet"]


def _throughput_weight(spec: GpuSpec) -> float:
    """Relative capability of one member for PROCLUS-shaped kernels.

    The heavy kernels are bandwidth-bound (compute_l.distances,
    x_sums), so effective memory bandwidth is the natural proportion;
    a usable-memory term guards degenerate specs.
    """
    if spec.usable_bytes <= 0:
        return 0.0
    return spec.effective_bandwidth


@dataclass(frozen=True)
class Fleet:
    """An ordered set of modeled devices one job can shard across."""

    specs: tuple[GpuSpec, ...]
    #: Optional explicit shard weights; derived from modeled
    #: throughput when omitted.  Zero means "member takes no points".
    weights: tuple[float, ...] | None = field(default=None)

    def __post_init__(self) -> None:
        if not self.specs:
            raise ParameterError("a fleet needs at least one device")
        if not all(isinstance(spec, GpuSpec) for spec in self.specs):
            raise ParameterError("fleet members must be GpuSpec instances")
        if self.weights is not None:
            if len(self.weights) != len(self.specs):
                raise ParameterError(
                    f"{len(self.weights)} weights for {len(self.specs)} devices"
                )
            if any(w < 0 for w in self.weights):
                raise ParameterError("fleet weights must be >= 0")
            if sum(self.weights) <= 0:
                raise ParameterError("at least one fleet weight must be positive")

    @property
    def num_devices(self) -> int:
        return len(self.specs)

    @property
    def name(self) -> str:
        counts: dict[str, int] = {}
        for spec in self.specs:
            counts[spec.name] = counts.get(spec.name, 0) + 1
        members = ", ".join(
            name if count == 1 else f"{count}x {name}"
            for name, count in counts.items()
        )
        return f"fleet[{self.num_devices}]({members})"

    def effective_weights(self) -> tuple[float, ...]:
        """Shard weights actually used (explicit, or modeled throughput)."""
        if self.weights is not None:
            return tuple(
                w if self.specs[i].usable_bytes > 0 else 0.0
                for i, w in enumerate(self.weights)
            )
        weights = tuple(_throughput_weight(spec) for spec in self.specs)
        if sum(weights) <= 0:
            raise ParameterError("no fleet member has usable memory")
        return weights

    def shard_plan(self, n: int) -> ShardPlan:
        """Contiguous row partition of ``n`` points over the members."""
        return ShardPlan(n=n, counts=split_exact(n, self.effective_weights()))

    @property
    def total_usable_bytes(self) -> int:
        return sum(max(0, spec.usable_bytes) for spec in self.specs)

    @property
    def max_usable_bytes(self) -> int:
        return max(max(0, spec.usable_bytes) for spec in self.specs)


def default_fleet(devices: int = 2, spec: GpuSpec = GTX_1660_TI) -> Fleet:
    """A homogeneous fleet of ``devices`` copies of ``spec``."""
    if not isinstance(devices, int) or isinstance(devices, bool):
        raise ParameterError(
            f"devices must be an int, got {type(devices).__name__}"
        )
    if devices < 1:
        raise ParameterError(f"devices must be >= 1, got {devices}")
    return Fleet(specs=(spec,) * devices)


def mixed_fleet(small: int = 1, large: int = 1) -> Fleet:
    """The paper's two evaluation cards side by side.

    ``small`` GTX 1660 Ti members plus ``large`` RTX 3090 members — the
    heterogeneous mix the scheduler tests exercise (a ~3.2x bandwidth
    spread, so balanced sharding matters).
    """
    if small < 0 or large < 0 or small + large < 1:
        raise ParameterError(
            f"need at least one device, got small={small} large={large}"
        )
    return Fleet(specs=(GTX_1660_TI,) * small + (RTX_3090,) * large)
