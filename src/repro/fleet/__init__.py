"""Multi-device sharding: one job across a fleet of modeled GPUs.

Public surface:

* :class:`Fleet`, :func:`default_fleet`, :func:`mixed_fleet` — which
  devices to shard across;
* the ``fleet-gpu*`` engines — drop-in backends returning clusterings
  bit-identical to their solo counterparts;
* :func:`fleet_report` — per-device ledgers + communication summary;
* :func:`run_fleet_bench` — the scaling-curve benchmark behind
  ``repro bench fleet``;
* :mod:`repro.fleet.recovery` — elastic fault tolerance: re-shard
  plans after device loss (:func:`plan_recovery`,
  :func:`degraded_fleet`) and the :class:`DeviceHealth`
  quarantine/readmit tracker.

See ``docs/fleet.md`` for the sharding model and determinism contract.
"""

from .device import FleetDevice, LogicalDevice, ShardDevice, SHARDED_KERNELS
from .engine import (
    FleetEngineMixin,
    FleetGpuFastProclusEngine,
    FleetGpuFastStarProclusEngine,
    FleetGpuProclusEngine,
)
from .fleet import Fleet, default_fleet, mixed_fleet
from .interconnect import (
    allreduce_seconds,
    broadcast_seconds,
    link_bandwidth,
    link_latency,
)
from .model import FleetModel, fleet_report
from .partition import ShardPlan, split_exact, tree_merge
from .recovery import (
    DeviceHealth,
    RecoveryPlan,
    active_devices,
    dead_device_indices,
    degraded_fleet,
    plan_recovery,
)

__all__ = [
    "Fleet",
    "default_fleet",
    "mixed_fleet",
    "ShardPlan",
    "split_exact",
    "tree_merge",
    "FleetModel",
    "fleet_report",
    "FleetDevice",
    "LogicalDevice",
    "ShardDevice",
    "SHARDED_KERNELS",
    "FleetEngineMixin",
    "FleetGpuProclusEngine",
    "FleetGpuFastProclusEngine",
    "FleetGpuFastStarProclusEngine",
    "allreduce_seconds",
    "broadcast_seconds",
    "link_bandwidth",
    "link_latency",
    "run_fleet_bench",
    "DeviceHealth",
    "RecoveryPlan",
    "active_devices",
    "dead_device_indices",
    "degraded_fleet",
    "plan_recovery",
]


def run_fleet_bench(*args, **kwargs):
    # Deferred import: bench pulls in the full bench machinery.
    from .bench import run_fleet_bench as _run

    return _run(*args, **kwargs)
