"""``repro bench fleet``: the multi-device scaling curve.

Runs one fixed workload solo and across fleets of 1..D modeled devices
per GPU backend, and reports the scaling curve — modeled speedup over
solo, communication fraction, collective step counts, and the
per-device ledgers — as the schema-versioned ``BENCH_fleet.json``.

The D = 1 fleet is an anchor: it issues the solo kernel geometry with
no collectives, so its modeled time matches the solo run's (to float
round-off) and its speedup is 1.0.  Every point on the curve also
re-checks the
determinism contract (labels / dimensions / cost / counters equal to
solo) so a bench run doubles as an end-to-end equivalence sweep.

The default workload (n = 16384, d = 64) sits where the model says
multi-device starts to pay: per-point kernel time comfortably above
the per-launch overhead, so splitting rows beats the added collective
latency.  Lower-dimensional workloads at this n are latency-bound and
the curve honestly reports speedups below 1 — that shape is the point
of the bench.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from ..core.api import BACKENDS
from ..data.normalize import minmax_normalize
from ..data.synthetic import generate_subspace_data
from ..obs.export import report_envelope
from ..params import ProclusParams
from .fleet import Fleet, default_fleet
from .model import FleetModel, fleet_report

__all__ = ["FLEET_BENCH_SCHEMA", "DEFAULT_DEVICES", "run_fleet_bench",
           "write_fleet_bench"]

#: ``BENCH_fleet.json`` schema (bump on incompatible changes).
FLEET_BENCH_SCHEMA = "repro.fleet_bench/1"

#: Device counts of the default scaling curve.
DEFAULT_DEVICES: tuple[int, ...] = (1, 2, 3, 4)

#: GPU backends the curve covers (solo name -> fleet name).
_FLEET_BACKENDS: tuple[tuple[str, str], ...] = (
    ("gpu", "fleet-gpu"),
    ("gpu-fast", "fleet-gpu-fast"),
    ("gpu-fast-star", "fleet-gpu-fast-star"),
)


def _run(factory, params: ProclusParams, seed: int, data: np.ndarray, **kwargs):
    engine = factory(params=params, seed=seed, **kwargs)
    result = engine.fit(data)
    return engine, result


def run_fleet_bench(
    n: int = 16384,
    d: int = 64,
    k: int = 16,
    l: int = 4,
    devices: Sequence[int] = DEFAULT_DEVICES,
    seed: int = 0,
    backends: Sequence[str] | None = None,
    fleet_for: Callable[[int], Fleet] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the scaling curve; returns the ``BENCH_fleet.json`` payload.

    ``fleet_for`` maps a device count to the :class:`Fleet` to model
    (default: that many GTX 1660 Ti cards).
    """
    if fleet_for is None:
        fleet_for = default_fleet
    wanted = backends if backends is not None else [s for s, _ in _FLEET_BACKENDS]
    pairs = [(s, f) for s, f in _FLEET_BACKENDS if s in wanted]
    dataset = generate_subspace_data(n=n, d=d, seed=seed)
    data = minmax_normalize(dataset.data)
    params = ProclusParams(k=k, l=l)

    out_backends = []
    for solo_name, fleet_name in pairs:
        if progress is not None:
            progress(f"running {solo_name} solo ...")
        _, solo = _run(BACKENDS[solo_name], params, seed, data)
        solo_seconds = solo.stats.modeled_seconds
        curve = []
        for count in devices:
            fleet = fleet_for(count)
            if progress is not None:
                progress(f"running {fleet_name} on {fleet.name} ...")
            engine, result = _run(
                BACKENDS[fleet_name], params, seed, data, fleet=fleet
            )
            assert isinstance(engine.model, FleetModel)
            report = fleet_report(engine.model)
            seconds = result.stats.modeled_seconds
            identical = (
                np.array_equal(solo.labels, result.labels)
                and solo.dimensions == result.dimensions
                and solo.cost == result.cost
            )
            curve.append(
                {
                    "devices": count,
                    "fleet": fleet.name,
                    "modeled_seconds": seconds,
                    "speedup": solo_seconds / seconds if seconds > 0 else 0.0,
                    "communication_fraction": report["communication_fraction"],
                    "comm_seconds": report["comm_seconds"],
                    "comm_bytes": report["comm_bytes"],
                    "allreduce_steps": report["allreduce_steps"],
                    "broadcast_steps": report["broadcast_steps"],
                    "identical_to_solo": bool(identical),
                    "straggler_index": report["attribution"]["straggler_index"],
                    "imbalance": report["attribution"]["imbalance"],
                    "attribution": report["attribution"],
                    "per_device": report["devices"],
                }
            )
        out_backends.append(
            {
                "backend": solo_name,
                "fleet_backend": fleet_name,
                "solo_modeled_seconds": solo_seconds,
                "curve": curve,
            }
        )

    ok = all(
        point["identical_to_solo"]
        for backend in out_backends
        for point in backend["curve"]
    )
    return {
        **report_envelope(FLEET_BENCH_SCHEMA),
        "ok": ok,
        "workload": {
            "n": n, "d": d, "k": k, "l": l, "seed": seed,
            "devices": list(devices),
        },
        "backends": out_backends,
    }


def write_fleet_bench(payload: dict[str, Any], path: str | Path) -> Path:
    """Write the bench payload as pretty JSON; returns the path."""
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def render_fleet_bench(payload: dict[str, Any]) -> str:
    """Human-readable scaling table for the CLI."""
    lines = []
    workload = payload["workload"]
    lines.append(
        f"fleet scaling at n={workload['n']} d={workload['d']} "
        f"k={workload['k']} l={workload['l']} (modeled seconds)"
    )
    header = (
        f"{'backend':<14} {'D':>2} {'modeled':>10} {'speedup':>8} "
        f"{'comm%':>6} {'strag':>6} {'imbal':>6} {'allred':>6} "
        f"{'bcast':>6} {'equal':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for backend in payload["backends"]:
        for point in backend["curve"]:
            lines.append(
                f"{backend['backend']:<14} {point['devices']:>2} "
                f"{point['modeled_seconds'] * 1e3:>8.3f}ms "
                f"{point['speedup']:>7.2f}x "
                f"{point['communication_fraction'] * 100:>5.1f}% "
                f"{point.get('straggler_index', 1.0):>6.3f} "
                f"{point.get('imbalance', 1.0):>6.3f} "
                f"{point['allreduce_steps']:>6.0f} "
                f"{point['broadcast_steps']:>6.0f} "
                f"{'yes' if point['identical_to_solo'] else 'NO':>6}"
            )
    return "\n".join(lines)
