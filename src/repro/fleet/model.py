"""Fleet cost model: logical solo accounting + per-device ledgers.

A :class:`FleetModel` runs *two* books in parallel:

* the **logical** book — a :class:`~repro.hardware.cost_model.GpuModel`
  that replays exactly the kernel-launch stream a solo run would issue.
  Its :class:`~repro.hardware.counters.WorkCounter` is therefore
  bit-identical to the solo run's (the differential equivalence suite
  pins this), and ``RunStats.counters`` reports it.
* the **physical** book — one ``GpuModel`` per fleet member, holding
  that device's sharded launches.  Per-device busy seconds and work
  counters feed the ``fleet.*`` metrics and :func:`fleet_report`.

Fleet wall time is the *critical path*: each member's clock advances
independently through its sharded launches, and every collective step
(all-reduce / broadcast) synchronizes all clocks to the maximum plus
the modeled communication time.  ``phase_seconds`` accrues those
fleet-clock increments, so ``total_seconds`` is the end-to-end modeled
makespan — the quantity ``BENCH_fleet.json``'s scaling curve reports.
"""

from __future__ import annotations

from ..hardware.cost_model import GpuModel, HardwareModel
from ..hardware.specs import GpuSpec
from ..obs.explain.fleetattr import fleet_attribution
from .fleet import Fleet

__all__ = ["FleetModel", "fleet_report"]


class FleetModel(HardwareModel):
    """Critical-path cost model over a fleet of modeled devices."""

    def __init__(self, fleet: Fleet, logical_spec: GpuSpec) -> None:
        super().__init__()
        self.fleet = fleet
        #: Replays the solo launch stream; its counter IS this model's
        #: counter, so RunStats matches the solo run bit for bit.
        self.logical = GpuModel(logical_spec)
        self.counter = self.logical.counter
        #: Per-member physical ledgers (index-aligned with fleet.specs).
        self.shards = [GpuModel(spec) for spec in fleet.specs]
        #: Seconds each member spent waiting at collective steps
        #: (clock skew absorbed at synchronization), plus comm time.
        self.sync_seconds = [0.0] * fleet.num_devices

    @property
    def name(self) -> str:
        return self.fleet.name

    @property
    def comm_seconds(self) -> float:
        """Total modeled collective-communication seconds."""
        return self.counter.get("fleet.comm_seconds")

    @property
    def communication_fraction(self) -> float:
        """Share of the fleet makespan spent in collectives."""
        total = self.total_seconds
        return self.comm_seconds / total if total > 0 else 0.0


def fleet_report(model: FleetModel) -> dict:
    """Per-device ledger summary for metrics, bench, and the CLI.

    The ``attribution`` block is the straggler/imbalance analysis of
    :func:`repro.obs.explain.fleet_attribution` over the same ledgers,
    so ``BENCH_fleet.json`` and ``repro explain`` agree by construction.
    """
    makespan = model.total_seconds
    devices = []
    for index, shard in enumerate(model.shards):
        busy = shard.total_seconds
        sync = model.sync_seconds[index]
        devices.append(
            {
                "device": index,
                "spec": shard.spec.name,
                "busy_seconds": busy,
                "sync_seconds": sync,
                "idle_seconds": max(0.0, makespan - busy - sync),
                "kernel_launches": shard.counter.get("gpu.kernel_launches"),
                "flops": shard.counter.get("gpu.flops"),
                "gmem_bytes": shard.counter.get("gpu.gmem_bytes"),
                "h2d_bytes": shard.counter.get("gpu.h2d_bytes"),
                "atomic_ops": shard.counter.get("gpu.atomic_ops"),
            }
        )
    report = {
        "name": model.name,
        "num_devices": model.fleet.num_devices,
        "total_seconds": makespan,
        "comm_seconds": model.comm_seconds,
        "communication_fraction": model.communication_fraction,
        "allreduce_steps": model.counter.get("fleet.allreduce_steps"),
        "broadcast_steps": model.counter.get("fleet.broadcast_steps"),
        "comm_bytes": model.counter.get("fleet.comm_bytes"),
        "devices": devices,
    }
    report["attribution"] = fleet_attribution(report)
    return report
