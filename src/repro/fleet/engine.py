"""Fleet engines: the GPU variants sharded across D modeled devices.

:class:`FleetEngineMixin` swaps the single :class:`~repro.gpu.device.Device`
for a :class:`~repro.fleet.device.FleetDevice` and reroutes the per-point
math hooks of :class:`~repro.core.base.EngineBase` through the shard
partition:

* distance rows and point assignment are computed per shard on that
  shard's contiguous row range and concatenated in device order — both
  are per-row operations, so the concatenation is bit-identical to the
  solo computation;
* the per-dimension sums (``H`` / ``X``) are computed per shard and
  merged with :func:`~repro.fleet.partition.tree_merge`; under the
  exact-accumulation invariant of :mod:`repro.core.distance` the merged
  float64 sums match the solo single-pass sums bit for bit;
* cluster evaluation keeps the canonical single-pass implementation:
  its centroid-relative terms are not exactly representable, so NumPy's
  pairwise summation makes a genuinely sharded reduction order-sensitive
  in the last bits.  The fleet models the sharded *kernel* (time,
  per-device work) but computes the *value* canonically — see
  ``docs/fleet.md`` for the full determinism contract.

Every derived backend therefore returns the identical clustering —
labels, dimensions, cost, and counters — as its solo counterpart for
the same seed, for any device count and any shard weighting.
"""

from __future__ import annotations

import numpy as np

from ..core.distance import abs_diff_dim_sums, euclidean_to_point
from ..core.phases import assign_points
from ..exceptions import ParameterError
from ..gpu_impl.accounting import F32, GpuEngineMixin
from ..gpu_impl.gpu_fast import GpuFastProclusEngine
from ..gpu_impl.gpu_fast_star import GpuFastStarProclusEngine
from ..gpu_impl.gpu_proclus import GpuProclusEngine
from ..hardware.cost_model import HardwareModel
from ..hardware.specs import gpu_for_problem
from .device import FleetDevice
from .fleet import Fleet, default_fleet
from .model import FleetModel
from .partition import tree_merge

__all__ = [
    "FleetEngineMixin",
    "FleetGpuProclusEngine",
    "FleetGpuFastProclusEngine",
    "FleetGpuFastStarProclusEngine",
]

F64 = 8


class FleetEngineMixin(GpuEngineMixin):
    """Shard the job of one engine across a :class:`Fleet` of devices."""

    def __init__(
        self,
        *args,
        fleet: Fleet | int | None = None,
        speculation: float | None = None,
        **kwargs,
    ) -> None:
        """``fleet``: the devices to shard across — a :class:`Fleet`,
        an int (that many default cards), or ``None`` for two.
        ``speculation``: straggler-index threshold above which a
        sharded launch's slowest split is speculatively re-executed on
        the fastest member (``None`` disables; see
        :meth:`~repro.fleet.device.FleetDevice.configure_speculation`).
        """
        if fleet is None:
            fleet = default_fleet(2)
        elif isinstance(fleet, int) and not isinstance(fleet, bool):
            fleet = default_fleet(fleet)
        elif not isinstance(fleet, Fleet):
            raise ParameterError(
                f"fleet must be a Fleet or int, got {type(fleet).__name__}"
            )
        self.fleet = fleet
        self.speculation = None if speculation is None else float(speculation)
        self._plan = None
        super().__init__(*args, **kwargs)

    # ------------------------------------------------------------------
    # Model / device lifecycle
    # ------------------------------------------------------------------
    def _make_model(self, n: int, d: int) -> HardwareModel:
        spec = self._gpu_spec if self._gpu_spec is not None else gpu_for_problem(n)
        return FleetModel(self.fleet, spec)

    def _make_device(self, data: np.ndarray) -> FleetDevice:
        assert isinstance(self.model, FleetModel)
        n, d = data.shape
        self._plan = self.fleet.shard_plan(n)
        device = FleetDevice(
            self.fleet, model=self.model, tracer=self._obs, plan=self._plan
        )
        k = self.params.k
        l = self.params.l
        # Collective payloads per sharded kernel: what partial state it
        # leaves distributed (all-reduced before the next root step) and
        # what root-held parameters it needs broadcast first.
        device.configure_collectives(
            reduce_bytes={
                # Distance-row segments needed for the k x k delta kernel.
                "compute_l.distances": k * k * F32,
                # Per-medoid sphere sizes |L_i|.
                "compute_l.build_l": k * F32,
                # H partial sums (k x d float64) + membership counts.
                "find_dimensions.x_sums": k * d * F64 + k * F32,
                # Cluster sizes |C_i|.
                "assign_points": k * F32,
                # Centroid partials + per-cluster cost partials.
                "evaluate_cluster": k * d * F64 + k * F32 + k * F64,
                "refinement.x_sums": k * d * F64 + k * F32,
            },
            bcast_bytes={
                # Medoid points + selected dimension masks.
                "assign_points": k * d * F32 + k * l * F32,
                "compute_l.distances": k * d * F32,
            },
            # Any other root -> shard transition ships the medoid points.
            default_bcast=k * d * F32,
        )
        device.configure_speculation(self.speculation)
        return device

    # ------------------------------------------------------------------
    # Sharded math (bit-identical by construction; see module docstring)
    # ------------------------------------------------------------------
    def _distance_row(self, point: np.ndarray) -> np.ndarray:
        out = np.empty(self._data.shape[0], dtype=np.float32)
        for start, stop in self._plan.ranges():
            if stop > start:
                out[start:stop] = euclidean_to_point(
                    self._data[start:stop], point
                )
        return out

    def _dim_sums(self, mask: np.ndarray, point: np.ndarray) -> np.ndarray:
        partials = [
            abs_diff_dim_sums(
                self._data[start:stop][mask[start:stop]], point
            )
            for start, stop in self._plan.ranges()
            if stop > start
        ]
        return tree_merge(partials)

    def _assign_points(
        self, medoid_points: np.ndarray, dims
    ) -> tuple[np.ndarray, np.ndarray]:
        labels_parts = []
        seg_parts = []
        for start, stop in self._plan.ranges():
            if stop > start:
                labels_part, seg_part = assign_points(
                    self._data[start:stop], medoid_points, dims
                )
                labels_parts.append(labels_part)
                seg_parts.append(seg_part)
        return np.concatenate(labels_parts), np.vstack(seg_parts)

    # _evaluate_clusters intentionally NOT overridden: the cost value is
    # computed canonically (order-sensitive pairwise sums); only its
    # kernel time/work is sharded by the FleetDevice launch dispatch.


class FleetGpuProclusEngine(FleetEngineMixin, GpuProclusEngine):
    """GPU-PROCLUS sharded across a fleet of modeled devices."""

    backend_name = "fleet-gpu-proclus"


class FleetGpuFastProclusEngine(FleetEngineMixin, GpuFastProclusEngine):
    """GPU-FAST-PROCLUS sharded across a fleet of modeled devices."""

    backend_name = "fleet-gpu-fast-proclus"


class FleetGpuFastStarProclusEngine(FleetEngineMixin, GpuFastStarProclusEngine):
    """GPU-FAST*-PROCLUS sharded across a fleet of modeled devices."""

    backend_name = "fleet-gpu-fast-star-proclus"
