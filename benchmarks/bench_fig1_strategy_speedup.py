"""Fig. 1: speedup of the FAST strategies w.r.t. GPU-PROCLUS.

Run with ``pytest benchmarks/bench_fig1_strategy_speedup.py --benchmark-only``; set
``REPRO_BENCH_SCALE=paper`` for the paper's full sweep sizes.  The
rendered table places the measured (modeled) numbers next to the
paper's reported values; ``EXPERIMENTS.md`` records the comparison.
"""

from repro.bench.figures import fig1_strategy_speedup


def test_fig1_strategy_speedup(benchmark):
    report = benchmark.pedantic(fig1_strategy_speedup, rounds=1, iterations=1)
    print()
    print(report.render())
    for key, value in report.key_numbers.items():
        benchmark.extra_info[str(key)] = str(value)
    assert report.rows, "experiment produced no rows"
