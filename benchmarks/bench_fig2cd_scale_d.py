"""Figs. 2c-2d: running time and speedup as dimensionality grows.

Run with ``pytest benchmarks/bench_fig2cd_scale_d.py --benchmark-only``; set
``REPRO_BENCH_SCALE=paper`` for the paper's full sweep sizes.  The
rendered table places the measured (modeled) numbers next to the
paper's reported values; ``EXPERIMENTS.md`` records the comparison.
"""

from repro.bench.figures import fig2cd_scale_d


def test_fig2cd_scale_d(benchmark):
    report = benchmark.pedantic(fig2cd_scale_d, rounds=1, iterations=1)
    print()
    print(report.render())
    for key, value in report.key_numbers.items():
        benchmark.extra_info[str(key)] = str(value)
    assert report.rows, "experiment produced no rows"
