"""Section 5.4: kernel occupancy and memory-throughput table.

Run with ``pytest benchmarks/bench_sec54_utilization.py --benchmark-only``; set
``REPRO_BENCH_SCALE=paper`` for the paper's full sweep sizes.  The
rendered table places the measured (modeled) numbers next to the
paper's reported values; ``EXPERIMENTS.md`` records the comparison.
"""

from repro.bench.figures import sec54_utilization


def test_sec54_utilization(benchmark):
    report = benchmark.pedantic(sec54_utilization, rounds=1, iterations=1)
    print()
    print(report.render())
    for key, value in report.key_numbers.items():
        benchmark.extra_info[str(key)] = str(value)
    assert report.rows, "experiment produced no rows"
