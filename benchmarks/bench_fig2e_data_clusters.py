"""Fig. 2e: effect of the number of clusters in the data.

Run with ``pytest benchmarks/bench_fig2e_data_clusters.py --benchmark-only``; set
``REPRO_BENCH_SCALE=paper`` for the paper's full sweep sizes.  The
rendered table places the measured (modeled) numbers next to the
paper's reported values; ``EXPERIMENTS.md`` records the comparison.
"""

from repro.bench.figures import fig2e_data_clusters


def test_fig2e_data_clusters(benchmark):
    report = benchmark.pedantic(fig2e_data_clusters, rounds=1, iterations=1)
    print()
    print(report.render())
    for key, value in report.key_numbers.items():
        benchmark.extra_info[str(key)] = str(value)
    assert report.rows, "experiment produced no rows"
