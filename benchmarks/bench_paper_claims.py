"""Run the complete machine-checkable paper-claim registry.

Every quantitative claim of the paper (Sections 5.1-5.4, Figs. 1-3) is
measured and checked against an acceptance band; the benchmark fails if
any claim stops reproducing.
"""

from repro.bench.claims import check_all, format_results


def test_all_paper_claims(benchmark):
    results = benchmark.pedantic(check_all, rounds=1, iterations=1)
    print()
    print(format_results(results))
    for r in results:
        benchmark.extra_info[r.claim.claim_id] = (
            ("PASS " if r.passed else "FAIL ") + r.measured
        )
    failed = [r.claim.claim_id for r in results if not r.passed]
    assert not failed, f"claims no longer reproduced: {failed}"
