"""Figs. 3a-3e: multi-parameter study average time per combination vs n.

Run with ``pytest benchmarks/bench_fig3ae_multiparam_scale.py --benchmark-only``; set
``REPRO_BENCH_SCALE=paper`` for the paper's full sweep sizes.  The
rendered table places the measured (modeled) numbers next to the
paper's reported values; ``EXPERIMENTS.md`` records the comparison.
"""

from repro.bench.figures import fig3ae_multiparam_scale


def test_fig3ae_multiparam_scale(benchmark):
    report = benchmark.pedantic(fig3ae_multiparam_scale, rounds=1, iterations=1)
    print()
    print(report.render())
    for key, value in report.key_numbers.items():
        benchmark.extra_info[str(key)] = str(value)
    assert report.rows, "experiment produced no rows"
