"""Figs. 2g-2k: effect of each algorithm parameter (k, l, A, B, minDev).

Run with ``pytest benchmarks/bench_fig2gk_params.py --benchmark-only``; set
``REPRO_BENCH_SCALE=paper`` for the paper's full sweep sizes.  The
rendered table places the measured (modeled) numbers next to the
paper's reported values; ``EXPERIMENTS.md`` records the comparison.
"""

from repro.bench.figures import fig2gk_params


def test_fig2gk_params(benchmark):
    report = benchmark.pedantic(fig2gk_params, rounds=1, iterations=1)
    print()
    print(report.render())
    for key, value in report.key_numbers.items():
        benchmark.extra_info[str(key)] = str(value)
    assert report.rows, "experiment produced no rows"
