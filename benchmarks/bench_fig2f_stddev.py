"""Fig. 2f: effect of the generated clusters' standard deviation.

Run with ``pytest benchmarks/bench_fig2f_stddev.py --benchmark-only``; set
``REPRO_BENCH_SCALE=paper`` for the paper's full sweep sizes.  The
rendered table places the measured (modeled) numbers next to the
paper's reported values; ``EXPERIMENTS.md`` records the comparison.
"""

from repro.bench.figures import fig2f_stddev


def test_fig2f_stddev(benchmark):
    report = benchmark.pedantic(fig2f_stddev, rounds=1, iterations=1)
    print()
    print(report.render())
    for key, value in report.key_numbers.items():
        benchmark.extra_info[str(key)] = str(value)
    assert report.rows, "experiment produced no rows"
