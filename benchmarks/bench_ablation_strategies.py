"""Ablation (beyond the paper): FAST's two strategies in isolation.

The paper evaluates the Dist cache and the incremental H only jointly;
this benchmark runs `fast-dist-only` and `fast-h-only` to attribute the
measured 1.2-1.4x speedup to its two sources.
"""

from repro.bench.figures import ablation_strategies


def test_ablation_strategies(benchmark):
    report = benchmark.pedantic(ablation_strategies, rounds=1, iterations=1)
    print()
    print(report.render())
    for key, value in report.key_numbers.items():
        benchmark.extra_info[str(key)] = str(value)
    assert report.rows, "experiment produced no rows"
