"""Section 5.3: speedup contribution of the multi-param reuse levels.

Run with ``pytest benchmarks/bench_sec53_multiparam_levels.py --benchmark-only``; set
``REPRO_BENCH_SCALE=paper`` for the paper's full sweep sizes.  The
rendered table places the measured (modeled) numbers next to the
paper's reported values; ``EXPERIMENTS.md`` records the comparison.
"""

from repro.bench.figures import sec53_multiparam_levels


def test_sec53_multiparam_levels(benchmark):
    report = benchmark.pedantic(sec53_multiparam_levels, rounds=1, iterations=1)
    print()
    print(report.render())
    for key, value in report.key_numbers.items():
        benchmark.extra_info[str(key)] = str(value)
    assert report.rows, "experiment produced no rows"
