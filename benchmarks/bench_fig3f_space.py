"""Fig. 3f: peak device memory usage of the GPU variants vs n.

Run with ``pytest benchmarks/bench_fig3f_space.py --benchmark-only``; set
``REPRO_BENCH_SCALE=paper`` for the paper's full sweep sizes.  The
rendered table places the measured (modeled) numbers next to the
paper's reported values; ``EXPERIMENTS.md`` records the comparison.
"""

from repro.bench.figures import fig3f_space


def test_fig3f_space(benchmark):
    report = benchmark.pedantic(fig3f_space, rounds=1, iterations=1)
    print()
    print(report.render())
    for key, value in report.key_numbers.items():
        benchmark.extra_info[str(key)] = str(value)
    assert report.rows, "experiment produced no rows"
