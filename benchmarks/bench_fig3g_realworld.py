"""Fig. 3g: multi-parameter studies on the real-world datasets.

Run with ``pytest benchmarks/bench_fig3g_realworld.py --benchmark-only``; set
``REPRO_BENCH_SCALE=paper`` for the paper's full sweep sizes.  The
rendered table places the measured (modeled) numbers next to the
paper's reported values; ``EXPERIMENTS.md`` records the comparison.
"""

from repro.bench.figures import fig3g_realworld


def test_fig3g_realworld(benchmark):
    report = benchmark.pedantic(fig3g_realworld, rounds=1, iterations=1)
    print()
    print(report.render())
    for key, value in report.key_numbers.items():
        benchmark.extra_info[str(key)] = str(value)
    assert report.rows, "experiment produced no rows"
