"""Figs. 2a-2b: running time and speedup as the dataset size grows.

Run with ``pytest benchmarks/bench_fig2ab_scale_n.py --benchmark-only``; set
``REPRO_BENCH_SCALE=paper`` for the paper's full sweep sizes.  The
rendered table places the measured (modeled) numbers next to the
paper's reported values; ``EXPERIMENTS.md`` records the comparison.
"""

from repro.bench.figures import fig2ab_scale_n


def test_fig2ab_scale_n(benchmark):
    report = benchmark.pedantic(fig2ab_scale_n, rounds=1, iterations=1)
    print()
    print(report.render())
    for key, value in report.key_numbers.items():
        benchmark.extra_info[str(key)] = str(value)
    assert report.rows, "experiment produced no rows"
